(* Format decomposition (S3.2.1 and Appendix A).

   A [rule] is the paper's FormatRewriteRule: a new composition of axes for a
   target sparse buffer together with the affine index map f (old coordinates
   -> new coordinates) and its inverse f^-1.  [decompose_format] rewrites each
   sparse iteration that reads the target buffer into one iteration per rule,
   computing on the new formats, plus (optionally) data-copy iterations that
   move values from the original buffer into the decomposed buffers
   (Figure 5).  When several rules are given, each computation accumulates
   into the output, so the pass strips per-iteration init statements and
   emits a standalone initialization iteration first. *)

open Tir
open Tir.Ir
open Offsets

type rule = {
  fr_name : string;          (* suffix for generated names, e.g. "bsr_2" *)
  fr_buffer : string;        (* name of the sparse buffer to rewrite *)
  fr_new_axes : axis list;   (* axes composing the new format *)
  fr_fwd : expr list -> expr list; (* f: old coords -> new coords *)
  fr_inv : expr list -> expr list; (* f^-1: new coords -> old coords *)
}

(* The iteration axes of [sp] that belong to buffer [b] (matched by name). *)
let axes_of_buffer_in_iter (sp : sp_iter) (b : buffer) : int list =
  let baxes = Option.get b.buf_axes in
  List.filter_map
    (fun (a : axis) ->
      let found = ref None in
      List.iteri
        (fun i (x : axis) -> if axis_equal x a then found := Some i)
        sp.sp_axes;
      !found)
    baxes

let find_buffer_exn (fn : func) (name : string) : buffer =
  match
    List.find_opt (fun (b : buffer) -> String.equal b.buf_name name) fn.fn_params
  with
  | Some b -> b
  | None -> err "decompose_format: no parameter buffer named %s" name

(* Rewrite one sparse iteration for one rule. *)
let rewrite_iter (sp : sp_iter) (old_buf : buffer) (new_buf : buffer)
    (r : rule) : sp_iter =
  let old_axis_idx = axes_of_buffer_in_iter sp old_buf in
  if List.length old_axis_idx <> List.length (Option.get old_buf.buf_axes) then
    err "decompose_format: iteration %s does not iterate all axes of %s"
      sp.sp_name old_buf.buf_name;
  (* New iteration variables for the new axes. *)
  let new_vars =
    List.map
      (fun (a : axis) ->
        Builder.var ~dtype:a.ax_idtype (String.lowercase_ascii a.ax_name))
      r.fr_new_axes
  in
  let new_var_exprs = List.map (fun x -> Evar x) new_vars in
  let old_coords = r.fr_inv new_var_exprs in
  if List.length old_coords <> List.length old_axis_idx then
    err "decompose_format %s: inverse map arity mismatch" r.fr_name;
  (* Substitution: old iteration variable -> inverse-mapped coordinate. *)
  let subst_map =
    List.fold_left2
      (fun m i e ->
        let x = List.nth sp.sp_vars i in
        Analysis.Int_map.add x.vid e m)
      Analysis.Int_map.empty old_axis_idx old_coords
  in
  (* Replace accesses to the old buffer by accesses to the new one at the new
     iteration variables, then substitute remaining old variables. *)
  let rec fix_expr (e : expr) : expr =
    match e with
    | Load (b, _) when buffer_equal b old_buf -> Load (new_buf, new_var_exprs)
    | Load (b, idx) -> Load (b, List.map fix_expr idx)
    | Binop (op, a, b) -> Binop (op, fix_expr a, fix_expr b)
    | Unop (op, a) -> Unop (op, fix_expr a)
    | Select (c, t, f) -> Select (fix_expr c, fix_expr t, fix_expr f)
    | Cast (dt, a) -> Cast (dt, fix_expr a)
    | Bsearch bs ->
        Bsearch
          { bs with bs_lo = fix_expr bs.bs_lo; bs_hi = fix_expr bs.bs_hi;
            bs_v = fix_expr bs.bs_v }
    | Int_imm _ | Float_imm _ | Bool_imm _ | Evar _ -> e
  in
  let rec fix_stmt (s : stmt) : stmt =
    match s with
    | Store (b, _idx, value) when buffer_equal b old_buf ->
        Store (new_buf, new_var_exprs, fix_expr value)
    | Store (b, idx, value) -> Store (b, List.map fix_expr idx, fix_expr value)
    | Seq l -> Seq (List.map fix_stmt l)
    | For f -> For { f with extent = fix_expr f.extent; body = fix_stmt f.body }
    | If (c, t, f) -> If (fix_expr c, fix_stmt t, Option.map fix_stmt f)
    | Let_stmt (x, value, body) -> Let_stmt (x, fix_expr value, fix_stmt body)
    | Eval e -> Eval (fix_expr e)
    | Alloc (b, body) -> Alloc (b, fix_stmt body)
    | Block_stmt _ | Mma_sync _ | Sp_iter_stmt _ ->
        err "decompose_format: unsupported construct in %s" sp.sp_name
  in
  let tr st = Analysis.subst_stmt subst_map (fix_stmt st) in
  (* Assemble the new axis/kind/var lists: replace the old buffer's axes
     (contiguously, at the position of the first) by the new axes; the other
     axes keep their variables. *)
  let kind_of_old =
    (* a new axis inherits Reduce if any old axis it replaces was a
       reduction; spatial axes of the output stay spatial *)
    List.exists
      (fun i -> List.nth sp.sp_kinds i = Reduce)
      old_axis_idx
  in
  let first_old = List.fold_left min max_int old_axis_idx in
  let keep i = not (List.mem i old_axis_idx) in
  let n = List.length sp.sp_axes in
  let prefix = List.filter keep (List.init first_old Fun.id) in
  let suffix = List.filter keep (List.init (n - first_old) (fun k -> first_old + k)) in
  let pick l i = List.nth l i in
  (* Kept root dense axes are cloned with the rule's suffix: loop names stay
     unique when several decomposed iterations share an axis (e.g. the
     feature axis K appearing in every bucket's computation). *)
  let clone_axis (a : axis) : axis =
    match (a.ax_parent, a.ax_kind) with
    | None, Dense_fixed -> { a with ax_name = a.ax_name ^ "_" ^ r.fr_name }
    | _ -> a
  in
  let pick_axis i = clone_axis (pick sp.sp_axes i) in
  let axes' =
    List.map pick_axis prefix @ r.fr_new_axes @ List.map pick_axis suffix
  in
  let kinds' =
    List.map (pick sp.sp_kinds) prefix
    @ List.map
        (fun (a : axis) ->
          (* heuristics: new spatial axes corresponding to output rows stay
             spatial; all axes of a reduced buffer inherit Reduce except the
             row axes.  We map: an axis whose coordinates appear in the
             output store remain spatial. *)
          ignore a;
          if kind_of_old then Reduce else Spatial)
        r.fr_new_axes
    @ List.map (pick sp.sp_kinds) suffix
  in
  let vars' =
    List.map (pick sp.sp_vars) prefix @ new_vars @ List.map (pick sp.sp_vars) suffix
  in
  (* Spatial/reduce of new axes: determine per-axis by whether the inverse
     coordinate of any *spatial* old axis depends on it. *)
  let spatial_old =
    List.filteri (fun k _ -> List.nth sp.sp_kinds (List.nth old_axis_idx k) = Spatial)
      old_coords
  in
  let kinds' =
    List.mapi
      (fun i k ->
        if i >= List.length prefix && i < List.length prefix + List.length r.fr_new_axes
        then
          let ax_var = List.nth vars' i in
          let used_in_spatial =
            List.exists
              (fun e ->
                List.exists
                  (fun (x : var) -> var_equal x ax_var)
                  (Analysis.free_vars_expr e))
              spatial_old
          in
          if used_in_spatial then Spatial else Reduce
        else k)
      kinds'
  in
  { sp_name = sp.sp_name ^ "_" ^ r.fr_name;
    sp_axes = axes';
    sp_kinds = kinds';
    sp_vars = vars';
    sp_fused = List.init (List.length axes') (fun i -> [ i ]);
    sp_init = None;
    sp_body = tr sp.sp_body }

(* Data-copy iteration: new_buf[new_vars] = old_buf[f^-1(new_vars)] over the
   new format's axes. *)
let copy_iter (old_buf : buffer) (new_buf : buffer) (r : rule) : stmt =
  Builder.sp_iter
    ~name:("copy_" ^ r.fr_name)
    ~axes:r.fr_new_axes
    ~kinds:(String.make (List.length r.fr_new_axes) 'S')
    (fun vars -> Store (new_buf, vars, Load (old_buf, r.fr_inv vars)))

(* Initialization iteration: zero the output buffer over its spatial axes. *)
let init_iter (sp : sp_iter) : stmt option =
  match sp.sp_init with
  | None -> None
  | Some init ->
      (* iterate the spatial axes only *)
      let spatial =
        List.filteri (fun i _ -> List.nth sp.sp_kinds i = Spatial) sp.sp_axes
      in
      let spatial_vars =
        List.filteri (fun i _ -> List.nth sp.sp_kinds i = Spatial) sp.sp_vars
      in
      if List.exists (fun (a : axis) -> axis_is_sparse a || axis_is_variable a)
           spatial
      then err "decompose_format: output axes must be dense and fixed";
      let fresh =
        List.map
          (fun (a : axis) ->
            Builder.var ~dtype:a.ax_idtype
              (String.lowercase_ascii a.ax_name ^ "_init"))
          spatial
      in
      let subst =
        List.fold_left2
          (fun m (x : var) (y : var) -> Analysis.Int_map.add x.vid (Evar y) m)
          Analysis.Int_map.empty spatial_vars fresh
      in
      Some
        (Sp_iter_stmt
           { sp_name = sp.sp_name ^ "_init";
             sp_axes = spatial;
             sp_kinds = List.map (fun _ -> Spatial) spatial;
             sp_vars = fresh;
             sp_fused = List.init (List.length spatial) (fun i -> [ i ]);
             sp_init = None;
             sp_body = Analysis.subst_stmt subst init })

(* [decompose_format fn ~iter rules] rewrites the sparse iteration [iter]
   into one iteration per rule (over disjoint partitions of the target
   buffer's non-zeros, as arranged by the host-side format conversion).  When
   [emit_copies] is set, data-movement iterations converting the original
   buffer into each new format are prepended, as in Figure 5; benchmarks
   instead perform the conversion on the host at preprocessing time.
   Returns the rewritten function together with the new sparse buffers (one
   per rule, in order). *)
let decompose_format ?(emit_copies = false) (fn : func) ~(iter : string)
    (rules : rule list) : func * buffer list =
  if rules = [] then err "decompose_format: no rules";
  let sp = ref None in
  Analysis.iter_stmt
    (function
      | Sp_iter_stmt s when String.equal s.sp_name iter -> sp := Some s
      | _ -> ())
    fn.fn_body;
  let sp =
    match !sp with
    | Some s -> s
    | None -> err "decompose_format: no sparse iteration named %s" iter
  in
  let new_bufs =
    List.map
      (fun r ->
        let old_buf = find_buffer_exn fn r.fr_buffer in
        Builder.match_sparse_buffer ~dtype:old_buf.buf_dtype
          (old_buf.buf_name ^ "_" ^ r.fr_name)
          r.fr_new_axes)
      rules
  in
  let computes =
    List.map2
      (fun r nb ->
        let old_buf = find_buffer_exn fn r.fr_buffer in
        Sp_iter_stmt (rewrite_iter sp old_buf nb r))
      rules new_bufs
  in
  let copies =
    if emit_copies then
      List.map2
        (fun r nb ->
          let old_buf = find_buffer_exn fn r.fr_buffer in
          copy_iter old_buf nb r)
        rules new_bufs
    else []
  in
  let init = Option.to_list (init_iter sp) in
  let replacement = Seq (copies @ init @ computes) in
  let body =
    Analysis.map_stmt
      (function
        | Sp_iter_stmt s when String.equal s.sp_name iter -> replacement
        | s -> s)
      fn.fn_body
  in
  let params =
    (* keep the original buffer only if copies still read it *)
    let keep_old = emit_copies in
    let olds = List.map (fun r -> r.fr_buffer) rules in
    List.filter
      (fun (b : buffer) -> keep_old || not (List.mem b.buf_name olds))
      fn.fn_params
    @ new_bufs
  in
  ({ fn with fn_body = body; fn_params = params }, new_bufs)
