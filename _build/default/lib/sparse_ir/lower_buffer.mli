(** Sparse buffer lowering: Stage II -> Stage III (S3.4.1).

    Removes all axes: every sparse buffer becomes a flat 1-D buffer of its
    compressed storage size and every position-space access is rewritten to
    the Eq. 6-8 flat offset.  The result contains no sparse constructs and
    is accepted by the evaluator and the GPU simulator. *)

val flatten_buffer : Tir.Ir.buffer -> Tir.Ir.buffer
val lower : Tir.Ir.func -> Tir.Ir.func
