lib/sparse_ir/sparse_ir.ml: Format_rewrite Lower_buffer Lower_iter Offsets Stage1 Tir
