lib/sparse_ir/format_rewrite.mli: Tir
