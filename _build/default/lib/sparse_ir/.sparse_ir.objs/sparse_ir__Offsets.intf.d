lib/sparse_ir/offsets.mli: Tir
