lib/sparse_ir/lower_buffer.ml: Builder Int List Map Offsets Option Tir
