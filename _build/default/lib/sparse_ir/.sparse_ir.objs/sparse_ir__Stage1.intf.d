lib/sparse_ir/stage1.mli: Tir
