lib/sparse_ir/lower_iter.mli: Tir
