lib/sparse_ir/stage1.ml: Analysis Array List Offsets String Tir
