lib/sparse_ir/offsets.ml: Analysis Array Fun List Printf String Tir
