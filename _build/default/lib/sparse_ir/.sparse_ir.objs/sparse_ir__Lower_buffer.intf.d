lib/sparse_ir/lower_buffer.mli: Tir
