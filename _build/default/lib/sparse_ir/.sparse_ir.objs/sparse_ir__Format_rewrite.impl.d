lib/sparse_ir/format_rewrite.ml: Analysis Builder Fun List Offsets Option String Tir
