lib/sparse_ir/lower_iter.ml: Analysis Array Builder Dtype Hashtbl Lazy List Map Offsets Option String Tir
