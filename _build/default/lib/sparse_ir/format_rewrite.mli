(** Format decomposition (S3.2.1 and Appendix A): the FormatRewriteRule /
    decompose_format API. *)

type rule = {
  fr_name : string;                       (** suffix for generated names *)
  fr_buffer : string;                     (** sparse buffer to rewrite *)
  fr_new_axes : Tir.Ir.axis list;         (** the new format's composition *)
  fr_fwd : Tir.Ir.expr list -> Tir.Ir.expr list;
      (** f: old coordinates -> new coordinates *)
  fr_inv : Tir.Ir.expr list -> Tir.Ir.expr list;
      (** f^-1: new coordinates -> old coordinates (may load index maps) *)
}

val decompose_format :
  ?emit_copies:bool -> Tir.Ir.func -> iter:string -> rule list ->
  Tir.Ir.func * Tir.Ir.buffer list
(** Rewrite the named sparse iteration into one iteration per rule over the
    decomposed buffers (plus a standalone output-initialization iteration,
    since the per-format computations accumulate).  With [emit_copies],
    data-movement iterations converting the original buffer into each new
    format are prepended, as in Figure 5; benchmarks instead convert on the
    host at preprocessing time.  Returns the rewritten function and the new
    sparse buffers, in rule order. *)
