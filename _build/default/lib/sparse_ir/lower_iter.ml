(* Sparse iteration lowering: Stage I -> Stage II (S3.3.1 of the paper).

   For each sparse iteration the pass performs the paper's four steps:

   1. Auxiliary buffer materialization — the indptr/indices buffers of every
      axis reachable from the iteration or its sparse buffers are appended to
      the function parameters, with value-domain hints recorded in
      [fn_domains].
   2. Nested loop generation — one loop per axis (or per fused axis group),
      with data-dependent extents for variable axes; a TensorIR block wraps
      the body, carrying one iteration variable per axis bound to its
      position expression.
   3. Coordinate translation — buffer accesses move from coordinate space to
      position space.  When an access index is exactly the iteration variable
      of the same axis the position is reused directly; otherwise the
      coordinate is recomputed (Eq. 3) and inverted (Eq. 4), emitting a
      binary search for sparse axes.
   4. Read/write region analysis — every translated access contributes a
      (singleton) region to the block's read/write sets. *)

open Tir
open Tir.Ir
open Offsets

module Smap = Map.Make (String)

(* Per-axis lowering context. *)
type axis_ctx = {
  ac_axis : axis;
  ac_kind : iter_type;
  ac_loop_pos : expr;  (* relative position in loop space *)
  ac_block_var : var;  (* block iteration variable (position space) *)
}

let lower_sp_iter (sp : sp_iter) : stmt =
  let n_axes = List.length sp.sp_axes in
  let axes_arr = Array.of_list sp.sp_axes in
  let kinds_arr = Array.of_list sp.sp_kinds in
  let vars_arr = Array.of_list sp.sp_vars in
  (* Validate ordering: a variable axis must come after its parent when the
     parent is itself iterated. *)
  Array.iteri
    (fun i (a : axis) ->
      match a.ax_parent with
      | None -> ()
      | Some p ->
          let pos_of_parent = ref None in
          Array.iteri
            (fun j (b : axis) -> if axis_equal b p then pos_of_parent := Some j)
            axes_arr;
          (match (!pos_of_parent, a.ax_kind) with
          | Some j, _ when j > i ->
              err "sp_iter %s: axis %s iterated before its parent %s" sp.sp_name
                a.ax_name p.ax_name
          | None, (Dense_variable | Sparse_variable) ->
              err "sp_iter %s: variable axis %s requires its parent %s in the \
                   iteration"
                sp.sp_name a.ax_name p.ax_name
          | _ -> ()))
    axes_arr;
  (* ---------------- Step 2a: loop variables per fused group -------- *)
  (* [loop_pos] maps axis index -> relative position expression in loop
     space; [group_loops] collects (loop var, extent builder) outer-to-inner. *)
  let loop_pos : expr array = Array.make n_axes (Int_imm 0) in
  let loop_frames : (var * (string -> expr) Lazy.t) list ref = ref [] in
  (* position environment in loop space, by axis name *)
  let loop_pos_by_name = ref Smap.empty in
  let pos_fn_loop name =
    match Smap.find_opt name !loop_pos_by_name with
    | Some e -> e
    | None -> err "sp_iter %s: axis %s position unavailable" sp.sp_name name
  in
  let frames : (var * expr) list =
    (* (loop var, extent) outer-to-inner, evaluated incrementally so inner
       extents can reference outer positions *)
    List.concat_map
      (fun group ->
        match group with
        | [] -> err "sp_iter %s: empty fusion group" sp.sp_name
        | [ i ] ->
            let a = axes_arr.(i) in
            let lv = Builder.var (String.lowercase_ascii a.ax_name) in
            let ext = extent pos_fn_loop a in
            loop_pos.(i) <- Evar lv;
            loop_pos_by_name := Smap.add a.ax_name (Evar lv) !loop_pos_by_name;
            [ (lv, ext) ]
        | [ i; j ] ->
            (* Fused pair: parent must be a root dense-fixed axis, child a
               variable axis of the parent.  One loop runs over all stored
               positions of the child; the parent position is recovered with
               an upper-bound search on indptr. *)
            let pa = axes_arr.(i) and ca = axes_arr.(j) in
            if not (axis_is_variable ca) then
              err "sp_iter %s: fused child %s must be variable" sp.sp_name
                ca.ax_name;
            (match ca.ax_parent with
            | Some p when axis_equal p pa -> ()
            | _ ->
                err "sp_iter %s: fused axes %s,%s are not parent/child"
                  sp.sp_name pa.ax_name ca.ax_name);
            if pa.ax_parent <> None || pa.ax_kind <> Dense_fixed then
              err "sp_iter %s: fused parent %s must be a root dense_fixed axis"
                sp.sp_name pa.ax_name;
            let lv =
              Builder.var
                (String.lowercase_ascii pa.ax_name
                ^ String.lowercase_ascii ca.ax_name)
            in
            let indptr = indptr_exn ca in
            let parent_pos =
              Bsearch
                { bs_buf = indptr; bs_lo = Int_imm 0; bs_hi = pa.ax_length;
                  bs_v = Evar lv; bs_ub = true }
            in
            let child_pos =
              Analysis.simplify
                (Binop (Sub, Evar lv, Load (indptr, [ parent_pos ])))
            in
            loop_pos.(i) <- parent_pos;
            loop_pos.(j) <- child_pos;
            loop_pos_by_name :=
              Smap.add pa.ax_name parent_pos
                (Smap.add ca.ax_name child_pos !loop_pos_by_name);
            [ (lv, nnz_exn ca) ]
        | _ ->
            err "sp_iter %s: fusion groups of more than two axes are not \
                 supported"
              sp.sp_name)
      sp.sp_fused
  in
  ignore loop_frames;
  (* ---------------- Step 2b: block iteration variables ------------- *)
  let ctxs =
    Array.init n_axes (fun i ->
        let a = axes_arr.(i) in
        { ac_axis = a;
          ac_kind = kinds_arr.(i);
          ac_loop_pos = loop_pos.(i);
          ac_block_var =
            Builder.var ~dtype:a.ax_idtype ("v" ^ String.lowercase_ascii a.ax_name)
        })
  in
  (* position environment in block space, by axis name *)
  let block_pos = ref Smap.empty in
  Array.iter
    (fun c ->
      block_pos := Smap.add c.ac_axis.ax_name (Evar c.ac_block_var) !block_pos)
    ctxs;
  let pos_fn_block name =
    match Smap.find_opt name !block_pos with
    | Some e -> e
    | None ->
        err "sp_iter %s: access references axis %s outside the iteration"
          sp.sp_name name
  in
  (* Coordinate expression of iteration variable [i] in block space. *)
  let coord_of_iter i = coordinate pos_fn_block ctxs.(i).ac_axis in
  (* ---------------- Step 3: coordinate translation ----------------- *)
  let reads : region list ref = ref [] in
  let writes : region list ref = ref [] in
  let record dest (b : buffer) (idx : expr list) =
    dest := { rg_buf = b; rg_bounds = List.map (fun e -> (e, Int_imm 1)) idx } :: !dest
  in
  let iter_var_index (x : var) : int option =
    let found = ref None in
    Array.iteri (fun i (y : var) -> if var_equal x y then found := Some i) vars_arr;
    !found
  in
  (* Translate an expression, replacing iteration variables by coordinates
     and sparse-buffer accesses by position-space accesses.  A read of a
     coordinate that is absent from the compressed structure yields the
     sparse-tensor semantics value 0 (guarded by the binary-search miss
     condition). *)
  let rec tr_value (e : expr) : expr =
    match e with
    | Evar x -> (
        match iter_var_index x with
        | Some i -> coord_of_iter i
        | None -> e)
    | Load (b, idx) when is_sparse_buffer b ->
        let positions, misses = translate_access b idx in
        let load = Load (b, positions) in
        (match misses with
        | [] -> load
        | m :: ms ->
            let cond = List.fold_left (fun acc c -> Binop (Or, acc, c)) m ms in
            let zero =
              if Dtype.is_float b.buf_dtype then Float_imm 0.0 else Int_imm 0
            in
            Select (cond, zero, load))
    | Load (b, idx) -> Load (b, List.map tr_value idx)
    | Binop (op, a, b) -> Binop (op, tr_value a, tr_value b)
    | Unop (op, a) -> Unop (op, tr_value a)
    | Select (c, t, f) -> Select (tr_value c, tr_value t, tr_value f)
    | Cast (dt, a) -> Cast (dt, tr_value a)
    | Bsearch bs ->
        Bsearch
          { bs with
            bs_lo = tr_value bs.bs_lo;
            bs_hi = tr_value bs.bs_hi;
            bs_v = tr_value bs.bs_v }
    | Int_imm _ | Float_imm _ | Bool_imm _ -> e
  (* Translate the coordinate-space indices of an access to sparse buffer [b]
     into per-axis positions (Eq. 1-4).  Returns the positions together with
     the binary-search miss conditions for slow-path sparse axes (true when
     the requested coordinate is not stored). *)
  and translate_access (b : buffer) (idx : expr list) : expr list * expr list =
    let baxes =
      match b.buf_axes with Some a -> a | None -> assert false
    in
    if List.length idx <> List.length baxes then
      err "access to %s: expected %d indices, got %d" b.buf_name
        (List.length baxes) (List.length idx);
    (* positions of already-translated buffer axes, for ancestor offsets *)
    let buf_pos = ref Smap.empty in
    let buf_pos_fn name =
      match Smap.find_opt name !buf_pos with
      | Some e -> e
      | None ->
          err "access to %s: position of ancestor axis %s not available"
            b.buf_name name
    in
    let misses = ref [] in
    let positions =
      List.map2
        (fun (a : axis) (ie : expr) ->
          let p =
            match ie with
            | Evar x
              when (match iter_var_index x with
                   | Some i -> axis_equal ctxs.(i).ac_axis a
                   | None -> false) ->
                (* fast path: the index is the iteration variable of the same
                   axis; coordinate and position cancel out *)
                Evar ctxs.(Option.get (iter_var_index x)).ac_block_var
            | _ -> (
                let c = tr_value ie in
                if not (axis_is_sparse a) then c
                else
                  (* invert: find the position of coordinate [c] within the
                     stored segment of axis [a] (Eq. 4) *)
                  let lo, hi =
                    match a.ax_kind with
                    | Sparse_variable ->
                        let base = offset buf_pos_fn (Option.get a.ax_parent) in
                        ( Load (indptr_exn a, [ base ]),
                          Load (indptr_exn a, [ Binop (Add, base, Int_imm 1) ]) )
                    | Sparse_fixed ->
                        let base =
                          match a.ax_parent with
                          | Some p -> offset buf_pos_fn p
                          | None -> Int_imm 0
                        in
                        let lo =
                          Analysis.simplify (Binop (Mul, base, nnz_cols_exn a))
                        in
                        (lo, Analysis.simplify (Binop (Add, lo, nnz_cols_exn a)))
                    | Dense_fixed | Dense_variable -> assert false
                  in
                  let search =
                    Bsearch
                      { bs_buf = indices_exn a; bs_lo = lo; bs_hi = hi;
                        bs_v = c; bs_ub = false }
                  in
                  misses := Binop (Eq, search, hi) :: !misses;
                  Analysis.simplify (Binop (Sub, search, lo)))
          in
          buf_pos := Smap.add a.ax_name p !buf_pos;
          p)
        baxes idx
    in
    (positions, List.rev !misses)
  in
  let rec tr_stmt (s : stmt) : stmt =
    match s with
    | Store (b, idx, value) ->
        let idx', misses =
          if is_sparse_buffer b then translate_access b idx
          else (List.map tr_value idx, [])
        in
        record writes b idx';
        let st = Store (b, idx', tr_value value) in
        (* A scatter to an absent coordinate is dropped. *)
        (match misses with
        | [] -> st
        | m :: ms ->
            let cond = List.fold_left (fun acc c -> Binop (Or, acc, c)) m ms in
            If (Unop (Not, cond), st, None))
    | Seq l -> Seq (List.map tr_stmt l)
    | If (c, t, f) -> If (tr_value c, tr_stmt t, Option.map tr_stmt f)
    | For f -> For { f with extent = tr_value f.extent; body = tr_stmt f.body }
    | Let_stmt (x, value, body) -> Let_stmt (x, tr_value value, tr_stmt body)
    | Eval e -> Eval (tr_value e)
    | Alloc (b, body) -> Alloc (b, tr_stmt body)
    | Block_stmt _ | Mma_sync _ | Sp_iter_stmt _ ->
        err "sp_iter %s: unsupported construct inside the iteration body"
          sp.sp_name
  in
  (* Collect reads after translation. *)
  let collect_reads st =
    Analysis.iter_stmt
      ~enter_expr:(function
        | Load (b, idx) -> record reads b idx
        | _ -> ())
      (fun _ -> ())
      st
  in
  let body = tr_stmt sp.sp_body in
  let init = Option.map tr_stmt sp.sp_init in
  collect_reads body;
  (* ---------------- Assemble the block and loop nest --------------- *)
  let block_iters =
    Array.to_list
      (Array.map
         (fun c ->
           { bi_var = c.ac_block_var;
             bi_dom = c.ac_axis.ax_length;
             bi_kind = c.ac_kind;
             bi_bind = c.ac_loop_pos })
         ctxs)
  in
  let block =
    Block_stmt
      { blk_name = sp.sp_name;
        blk_iters = block_iters;
        blk_reads = List.rev !reads;
        blk_writes = List.rev !writes;
        blk_init = init;
        blk_body = body }
  in
  List.fold_right
    (fun (lv, ext) acc ->
      For { for_var = lv; extent = ext; kind = Serial; body = acc })
    frames block

(* Lower every sparse iteration in [fn]; materialize auxiliary buffers as
   parameters with domain hints. *)
let lower (fn : func) : func =
  let body =
    Analysis.map_stmt
      (function Sp_iter_stmt sp -> lower_sp_iter sp | s -> s)
      fn.fn_body
  in
  (* Step 1: auxiliary buffer materialization. *)
  let seen = Hashtbl.create 16 in
  List.iter (fun (b : buffer) -> Hashtbl.replace seen b.buf_id ()) fn.fn_params;
  let extra = ref [] in
  let domains = ref fn.fn_domains in
  let add_aux (a : axis) =
    let add_buf ?domain (b : buffer) =
      if not (Hashtbl.mem seen b.buf_id) then begin
        Hashtbl.replace seen b.buf_id ();
        extra := b :: !extra;
        match domain with
        | Some (lo, hi) -> domains := (b, lo, hi) :: !domains
        | None -> ()
      end
    in
    Option.iter
      (fun b ->
        add_buf
          ~domain:
            ( Int_imm 0,
              match a.ax_nnz with Some e -> e | None -> a.ax_length )
          b)
      a.ax_indptr;
    Option.iter
      (fun b ->
        add_buf ~domain:(Int_imm 0, Binop (Sub, a.ax_length, Int_imm 1)) b)
      a.ax_indices
  in
  Analysis.iter_stmt
    ~enter_expr:(function
      | Load (b, _) ->
          Option.iter (List.iter (fun a -> List.iter add_aux (axis_ancestors a)))
            b.buf_axes
      | Bsearch _ -> ()
      | _ -> ())
    (function
      | Store (b, _, _) ->
          Option.iter (List.iter (fun a -> List.iter add_aux (axis_ancestors a)))
            b.buf_axes
      | Block_stmt blk ->
          List.iter
            (fun bi ->
              Analysis.iter_expr
                (function
                  | Load (b, _) when not (Hashtbl.mem seen b.buf_id) ->
                      extra := b :: !extra;
                      Hashtbl.replace seen b.buf_id ()
                  | _ -> ())
                bi.bi_bind)
            blk.blk_iters
      | _ -> ())
    body;
  (* Loop extents and binds may reference indptr buffers not otherwise seen. *)
  Analysis.iter_stmt
    ~enter_expr:(function
      | Load (b, _) | Bsearch { bs_buf = b; _ } ->
          if not (Hashtbl.mem seen b.buf_id) && b.buf_scope = Global
             && not (is_sparse_buffer b) && Dtype.is_int b.buf_dtype then begin
            extra := b :: !extra;
            Hashtbl.replace seen b.buf_id ()
          end
      | _ -> ())
    (fun _ -> ())
    body;
  { fn with
    fn_body = body;
    fn_params = fn.fn_params @ List.rev !extra;
    fn_domains = !domains }
