(* Sparse buffer lowering: Stage II -> Stage III (S3.4.1 of the paper).

   Removes all axes: every sparse buffer is replaced by a flat 1-D buffer of
   its compressed storage size, and every position-space access is rewritten
   to the flat offset of Eq. 6-8.  The result contains no sparse constructs
   and is accepted by the evaluator and the GPU simulator. *)

open Tir
open Tir.Ir
open Offsets

module Int_map = Map.Make (Int)

let flatten_buffer (b : buffer) : buffer =
  match b.buf_axes with
  | None -> b
  | Some axes ->
      { b with
        buf_id = Builder.fresh_id Builder.buf_counter;
        buf_shape = [ storage_size axes ];
        buf_axes = None }

let lower (fn : func) : func =
  (* Map each sparse buffer to its flat replacement (stable across uses). *)
  let mapping : buffer Int_map.t ref = ref Int_map.empty in
  let flat (b : buffer) : buffer =
    match Int_map.find_opt b.buf_id !mapping with
    | Some fb -> fb
    | None ->
        let fb = flatten_buffer b in
        mapping := Int_map.add b.buf_id fb !mapping;
        fb
  in
  let rec tr_expr (e : expr) : expr =
    match e with
    | Load (b, idx) when is_sparse_buffer b ->
        let axes = Option.get b.buf_axes in
        let idx = List.map tr_expr idx in
        Load (flat b, [ flatten_access axes idx ])
    | Load (b, idx) -> Load (b, List.map tr_expr idx)
    | Binop (op, a, b) -> Binop (op, tr_expr a, tr_expr b)
    | Unop (op, a) -> Unop (op, tr_expr a)
    | Select (c, t, f) -> Select (tr_expr c, tr_expr t, tr_expr f)
    | Cast (dt, a) -> Cast (dt, tr_expr a)
    | Bsearch bs ->
        Bsearch
          { bs with
            bs_lo = tr_expr bs.bs_lo;
            bs_hi = tr_expr bs.bs_hi;
            bs_v = tr_expr bs.bs_v }
    | Int_imm _ | Float_imm _ | Bool_imm _ | Evar _ -> e
  in
  let tr_region (r : region) : region =
    if is_sparse_buffer r.rg_buf then
      let fb = flat r.rg_buf in
      { rg_buf = fb; rg_bounds = [ (Int_imm 0, List.hd fb.buf_shape) ] }
    else
      { r with
        rg_bounds = List.map (fun (lo, e) -> (tr_expr lo, tr_expr e)) r.rg_bounds }
  in
  let rec tr_stmt (s : stmt) : stmt =
    match s with
    | Store (b, idx, value) when is_sparse_buffer b ->
        let axes = Option.get b.buf_axes in
        let idx = List.map tr_expr idx in
        Store (flat b, [ flatten_access axes idx ], tr_expr value)
    | Store (b, idx, value) -> Store (b, List.map tr_expr idx, tr_expr value)
    | Seq l -> Seq (List.map tr_stmt l)
    | For f -> For { f with extent = tr_expr f.extent; body = tr_stmt f.body }
    | If (c, t, f) -> If (tr_expr c, tr_stmt t, Option.map tr_stmt f)
    | Let_stmt (x, value, body) -> Let_stmt (x, tr_expr value, tr_stmt body)
    | Block_stmt blk ->
        Block_stmt
          { blk with
            blk_iters =
              List.map
                (fun bi ->
                  { bi with bi_dom = tr_expr bi.bi_dom; bi_bind = tr_expr bi.bi_bind })
                blk.blk_iters;
            blk_reads = List.map tr_region blk.blk_reads;
            blk_writes = List.map tr_region blk.blk_writes;
            blk_init = Option.map tr_stmt blk.blk_init;
            blk_body = tr_stmt blk.blk_body }
    | Alloc (b, body) -> Alloc (flat b, tr_stmt body)
    | Eval e -> Eval (tr_expr e)
    | Mma_sync m ->
        let op o =
          if is_sparse_buffer o.op_buf then
            err "sparse buffer %s reached an MMA operand before flattening"
              o.op_buf.buf_name
          else
            { o with
              op_origin = List.map tr_expr o.op_origin;
              op_ld = tr_expr o.op_ld }
        in
        Mma_sync { m with mma_a = op m.mma_a; mma_b = op m.mma_b; mma_c = op m.mma_c }
    | Sp_iter_stmt sp ->
        err "sparse iteration %s must be lowered (stage I -> II) first"
          sp.sp_name
  in
  let body = tr_stmt fn.fn_body in
  let params = List.map (fun b -> if is_sparse_buffer b then flat b else b) fn.fn_params in
  { fn with fn_body = body; fn_params = params }
