(* End-to-end models assembled from compiled kernels. *)

module Graphsage = Graphsage
module Rgcn = Rgcn
