lib/nn/rgcn.mli: Formats Gpusim Kernels Tir Workloads
