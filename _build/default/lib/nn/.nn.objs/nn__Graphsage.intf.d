lib/nn/graphsage.mli: Csr Dense Formats Gpusim Tir
