lib/nn/nn.ml: Graphsage Rgcn
