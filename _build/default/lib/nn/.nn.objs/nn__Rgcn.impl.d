lib/nn/rgcn.ml: Array Csr Dense Float Formats Gemm Gpusim Ir Kernels Rgms Tensor Tir Workloads
