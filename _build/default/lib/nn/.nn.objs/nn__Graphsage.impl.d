lib/nn/graphsage.ml: Array Builder Csr Dense Dtype Ell Float Formats Gemm Gpusim Hyb Ir Kernels List Printf Rgms Schedule Sparse_ir Spmm Tensor Tir
