(* Root module of the schedule library: the core primitives plus the
   block-level transformations, re-exported under one namespace. *)

include Sched
module Memory = Memory
module Reduction = Reduction
module Tensorize = Tensorize

let cache_write = Memory.cache_write
let cache_read = Memory.cache_read
let rfactor = Reduction.rfactor
let tensorize = Tensorize.tensorize
