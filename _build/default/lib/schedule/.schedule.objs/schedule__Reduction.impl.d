lib/schedule/reduction.ml: Analysis Builder Dtype List Sched Tir
