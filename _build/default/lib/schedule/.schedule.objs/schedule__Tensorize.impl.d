lib/schedule/tensorize.ml: Analysis Builder List Option Sched String Tir
