lib/schedule/sched.ml: Analysis Builder List Option Printf Stdlib String Tir
