lib/schedule/schedule.ml: Memory Reduction Sched Tensorize
