lib/schedule/sched.mli: Tir
