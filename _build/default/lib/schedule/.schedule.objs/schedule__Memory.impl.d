lib/schedule/memory.ml: Analysis Builder List Option Sched String Tir
