(* Data-movement schedule primitives: cache_write (register accumulation) and
   cache_read (shared-memory staging, including gathered rows). *)

open Tir
open Tir.Ir
open Sched

let rec redirect_expr ~same_access ~(replacement : expr) (e : expr) : expr =
  let go = redirect_expr ~same_access ~replacement in
  match e with
  | Load (b, i) when same_access b i -> replacement
  | Load (b, i) -> Load (b, List.map go i)
  | Binop (op, a, b) -> Binop (op, go a, go b)
  | Unop (op, a) -> Unop (op, go a)
  | Select (c, t, f) -> Select (go c, go t, go f)
  | Cast (dt, a) -> Cast (dt, go a)
  | Bsearch bs ->
      Bsearch { bs with bs_lo = go bs.bs_lo; bs_hi = go bs.bs_hi; bs_v = go bs.bs_v }
  | Int_imm _ | Float_imm _ | Bool_imm _ | Evar _ -> e

(* [cache_write s ~block ~scope] accumulates the block's single store into a
   scratch buffer of the given scope and writes the result back once the
   block's reduction loops complete — TVM's cache_write +
   reverse_compute_at, the optimization TACO cannot express (S4.2.1).

   The loop chain between the hoist point and the block may contain, besides
   the reduction loops, constant-extent spatial loops (e.g. a vectorized
   feature sub-loop): the scratch buffer then gets one dimension per such
   loop, and the write-back replays them.  Guard conditions found inside the
   chain are re-applied around the write-back (unless they only constrain
   reduction iterations).  If the block carries no init, the write-back
   accumulates into the target instead of overwriting it. *)
let cache_write (s : t) ~(block : string) ?(scope = Local) () : string =
  let blk = find_block_exn s block in
  let target, idx, _ = single_store_exn blk in
  let reduce_vars = reduce_loop_vars blk in
  let suffix = chain_suffix (path_to_block s block) in
  (* cut the chain at the first reduction loop *)
  let rec cut = function
    | [] -> err "cache_write %s: no reduction loop above the block" block
    | Pf_for (x, _, _) :: _ as rest when List.mem x.vname reduce_vars -> rest
    | _ :: rest -> cut rest
  in
  let chain = cut suffix in
  (* spatial loops and guards inside the chain *)
  let spatials =
    List.filter_map
      (function
        | Pf_for (x, extent, kind) when not (List.mem x.vname reduce_vars) -> (
            match Analysis.const_int_opt extent with
            | Some n -> Some (x, n, kind)
            | None ->
                err
                  "cache_write %s: spatial loop %s in the reduction chain has \
                   non-constant extent"
                  block x.vname)
        | _ -> None)
      chain
  in
  let guards = List.filter_map (function Pf_if c -> Some c | _ -> None) chain in
  let chain_names =
    List.filter_map (function Pf_for (x, _, _) -> Some x.vname | _ -> None) chain
  in
  (* scratch buffer *)
  let acc_name = target.buf_name ^ "_" ^ block ^ "_acc" in
  let acc_shape = List.map (fun (_, n, _) -> Int_imm n) spatials in
  let acc_shape = if acc_shape = [] then [ Int_imm 1 ] else acc_shape in
  let acc = Builder.buffer ~scope ~dtype:target.buf_dtype acc_name acc_shape in
  let acc_idx =
    match spatials with
    | [] -> [ Int_imm 0 ]
    | l -> List.map (fun ((x : var), _, _) -> Evar x) l
  in
  let bindings = block_var_bindings blk in
  let outer_idx = List.map (Analysis.subst_expr bindings) idx in
  let same_access b i = buffer_equal b target && i = idx in
  let replacement = Load (acc, acc_idx) in
  let redirect_stmt =
    Analysis.map_stmt (function
      | Store (b, i, value) when same_access b i ->
          Store (acc, acc_idx, redirect_expr ~same_access ~replacement value)
      | Store (b, i, value) ->
          Store (b, i, redirect_expr ~same_access ~replacement value)
      | Eval e -> Eval (redirect_expr ~same_access ~replacement e)
      | st -> st)
  in
  let had_init = blk.blk_init <> None in
  rewrite_block s block (fun blk ->
      Block_stmt
        { blk with
          blk_init = Option.map redirect_stmt blk.blk_init;
          blk_body = redirect_stmt blk.blk_body;
          blk_writes =
            [ { rg_buf = acc;
                rg_bounds = List.map (fun e -> (e, Int_imm 1)) acc_idx } ] });
  (* write-back: replay spatial loops with fresh variables *)
  let fresh =
    List.map
      (fun ((x : var), n, kind) -> (x, Builder.var (x.vname ^ ".wb"), n, kind))
      spatials
  in
  let wb_subst =
    List.fold_left
      (fun m ((x : var), y, _, _) -> Analysis.Int_map.add x.vid (Evar y) m)
      Analysis.Int_map.empty fresh
  in
  let wb_target_idx = List.map (Analysis.subst_expr wb_subst) outer_idx in
  let wb_acc_idx =
    match fresh with
    | [] -> [ Int_imm 0 ]
    | l -> List.map (fun (_, y, _, _) -> Evar y) l
  in
  let wb_value =
    if had_init then Load (acc, wb_acc_idx)
    else Binop (Add, Load (target, wb_target_idx), Load (acc, wb_acc_idx))
  in
  let wb_store = Store (target, wb_target_idx, wb_value) in
  (* guards: drop those constraining only reduction loops; substitute fresh
     variables into those referencing the chain's spatial loops *)
  let chain_var_free c =
    List.for_all
      (fun (x : var) -> not (List.mem x.vname chain_names))
      (Analysis.free_vars_expr c)
  in
  let spatial_names = List.map (fun ((x : var), _, _) -> x.vname) spatials in
  let wb_guards =
    List.filter_map
      (fun c ->
        if chain_var_free c then Some c
        else if
          List.for_all
            (fun (x : var) ->
              (not (List.mem x.vname chain_names))
              || List.mem x.vname spatial_names)
            (Analysis.free_vars_expr c)
        then Some (Analysis.subst_expr wb_subst c)
        else None)
      guards
  in
  let writeback =
    let core = List.fold_right (fun c st -> If (c, st, None)) wb_guards wb_store in
    List.fold_right
      (fun (_, y, n, kind) st ->
        For { for_var = y; extent = Int_imm n; kind; body = st })
      fresh core
  in
  rewrite_at_chain_top s ~chain_vars:chain_names ~required:chain_names
    ~block_name:block (fun chain_stmt ->
      Alloc (acc, Seq [ chain_stmt; writeback ]));
  acc_name

(* Per-dimension staging decision for cache_read. *)
type stage_dim =
  | Invariant of expr               (* index does not vary below the stage point *)
  | Over of var * int * expr        (* varies with one loop var of const extent *)

(* [cache_read s ~block ~buf ~at] stages the region of [buf] read by [block]
   into a shared-memory buffer, placing the staging copy just above loop
   [at].  Every index dimension of every access must either be invariant
   below [at] or vary with exactly one constant-extent loop below [at] (this
   covers dense tiles, e.g. W[r, k, l], and gathered rows, e.g.
   X[indices[j], k]).  Returns the staging buffer name. *)
let cache_read (s : t) ~(block : string) ~(buf : string) ~(at : string) :
    string =
  let blk = find_block_exn s block in
  let target_load = ref None in
  let on_expr = function
    | Load (b, idx) when String.equal b.buf_name buf -> (
        match !target_load with
        | None -> target_load := Some (b, idx)
        | Some (_, idx') when idx' = idx -> ()
        | Some _ -> err "cache_read: multiple distinct accesses to %s" buf)
    | _ -> ()
  in
  Analysis.iter_stmt ~enter_expr:on_expr (fun _ -> ()) (Block_stmt blk);
  let target, idx =
    match !target_load with
    | Some r -> r
    | None -> err "cache_read: block %s does not read %s" block buf
  in
  (* loop vars (with extents) at-or-below [at] *)
  let below : (var * int) list ref = ref [] in
  let rec collect st ~active =
    match st with
    | For { for_var; extent; kind = _; body } ->
        let active = active || String.equal for_var.vname at in
        if active then begin
          match Analysis.const_int_opt extent with
          | Some n -> below := (for_var, n) :: !below
          | None ->
              err "cache_read: loop %s below %s has non-constant extent"
                for_var.vname at
        end;
        collect body ~active
    | Seq l -> List.iter (collect ~active) l
    | If (_, t, e) ->
        collect ~active t;
        Option.iter (collect ~active) e
    | Let_stmt (_, _, b) -> collect ~active b
    | Alloc (_, b) -> collect ~active b
    | Block_stmt b ->
        Option.iter (collect ~active) b.blk_init;
        collect ~active b.blk_body
    | Store _ | Eval _ | Mma_sync _ -> ()
    | Sp_iter_stmt _ -> err "cache_read: stage I construct in stage II program"
  in
  collect (get s).fn_body ~active:false;
  let below = !below in
  if below = [] then err "cache_read: loop %s not found" at;
  let bindings = block_var_bindings blk in
  let idx_loopspace = List.map (Analysis.subst_expr bindings) idx in
  let dims =
    List.map
      (fun e ->
        let vars = Analysis.free_vars_expr e in
        let used =
          List.filter
            (fun (x : var) -> List.exists (fun (y, _) -> var_equal x y) below)
            vars
        in
        match used with
        | [] -> Invariant e
        | [ x ] ->
            let _, extent = List.find (fun (y, _) -> var_equal x y) below in
            Over (x, extent, e)
        | _ ->
            err "cache_read: index of %s varies with several loops below %s" buf
              at)
      idx_loopspace
  in
  let stage_shape =
    List.filter_map (function Invariant _ -> None | Over (_, n, _) -> Some n) dims
  in
  let stage_name = buf ^ "_" ^ at ^ "_shared" in
  let stage =
    Builder.buffer ~scope:Shared ~dtype:target.buf_dtype stage_name
      (List.map (fun n -> Int_imm n) stage_shape)
  in
  let staged_idx =
    List.filter_map
      (function Invariant _ -> None | Over (x, _, _) -> Some (Evar x))
      dims
  in
  let same_access b i = buffer_equal b target && i = idx in
  let replacement = Load (stage, staged_idx) in
  let redirect =
    Analysis.map_stmt (fun st ->
        match st with
        | Store (b, i, value) ->
            Store (b, i, redirect_expr ~same_access ~replacement value)
        | st -> st)
  in
  rewrite_block s block (fun blk ->
      Block_stmt
        { blk with
          blk_init = Option.map redirect blk.blk_init;
          blk_body = redirect blk.blk_body });
  rewrite_loop s at (fun x extent kind body ->
      let copy_vars =
        List.filter_map
          (function
            | Invariant _ -> None
            | Over (y, n, _) -> Some (y, n, Builder.var (y.vname ^ ".copy")))
          dims
      in
      let src_idx =
        List.map
          (fun d ->
            match d with
            | Invariant e -> e
            | Over (y, _, e) ->
                let _, _, cv =
                  List.find (fun (z, _, _) -> var_equal y z) copy_vars
                in
                Analysis.subst1_expr y (Evar cv) e)
          dims
      in
      let dst_idx = List.map (fun (_, _, cv) -> Evar cv) copy_vars in
      let copy_body = Store (stage, dst_idx, Load (target, src_idx)) in
      let copy =
        List.fold_right
          (fun (_, n, cv) acc ->
            For { for_var = cv; extent = Int_imm n; kind = Serial; body = acc })
          copy_vars copy_body
      in
      let copy =
        match copy with For f -> For { f with kind = Parallel } | st -> st
      in
      Alloc (stage, Seq [ copy; For { for_var = x; extent; kind; body } ]));
  stage_name
