(* tensorize: rewrite an m×n×k matrix-multiply loop nest into a Tensor Core
   MMA intrinsic.  The paper uses this stage-II schedule to exploit
   Matrix-Multiply Units for BSR/SR-BCRS operators and fused RGMS (S4.3, S4.4).

   [tensorize s ~block ~m_loop ~n_loop ~k_loop] requires:
   - the three loops form a perfect nest (in any order) whose innermost body
     is exactly [block];
   - all three loops have constant extents (the MMA tile shape);
   - the block performs C[ic] = C[ic] + castA(A[ia]) * castB(B[ib]) where the
     flat offsets of A, B, C are affine in the three loop variables with unit
     stride along k (A), n (B) and n (C).

   If the block carries an init statement, the rewrite guards a tile-wide init
   nest on the remaining (non-tensorized) reduction iterators being at zero,
   preserving TensorIR reduction semantics. *)

open Tir
open Tir.Ir
open Sched

(* Flat stride of variable [x] within access [buf][idx]: sum over dimensions
   of (linear coefficient of x in that index) * (row-major stride of the
   dimension).  Requires constant buffer shape. *)
let flat_coeff (buf : buffer) (idx : expr list) (x : var) : int =
  let shape =
    List.map
      (fun e ->
        match Analysis.const_int_opt e with
        | Some n -> n
        | None -> err "tensorize: buffer %s has non-constant shape" buf.buf_name)
      buf.buf_shape
  in
  let rank = List.length shape in
  if List.length idx <> rank then
    err "tensorize: access to %s has rank %d but buffer has rank %d"
      buf.buf_name (List.length idx) rank;
  let strides =
    (* stride of dim d = product of shape[d+1..] *)
    let rec go = function
      | [] -> []
      | _ :: rest ->
          let s = List.fold_left ( * ) 1 rest in
          s :: go rest
    in
    go shape
  in
  List.fold_left2
    (fun acc e stride ->
      match Analysis.linear_in x e with
      | Some (c, _) -> acc + (c * stride)
      | None ->
          err "tensorize: index of %s not linear in %s" buf.buf_name x.vname)
    0 idx strides

let rec strip_casts (e : expr) : expr =
  match e with Cast (_, e') -> strip_casts e' | e -> e

let tensorize (s : t) ~(block : string) ~(m_loop : string) ~(n_loop : string)
    ~(k_loop : string) : unit =
  let blk = find_block_exn s block in
  let c_buf, c_idx, value = single_store_exn blk in
  (* Parse C = C + castA(A[...]) * castB(B[...]). *)
  let a_access, b_access =
    match strip_casts value with
    | Binop (Add, lhs, rhs) -> (
        (match strip_casts lhs with
        | Load (b, i) when buffer_equal b c_buf && i = c_idx -> ()
        | _ -> err "tensorize: block %s is not an accumulation into %s" block
                 c_buf.buf_name);
        match strip_casts rhs with
        | Binop (Mul, x, y) -> (
            match (strip_casts x, strip_casts y) with
            | Load (ba, ia), Load (bb, ib) -> ((ba, ia), (bb, ib))
            | _ -> err "tensorize: multiplicands of %s are not buffer loads" block)
        | _ -> err "tensorize: block %s body is not a multiply-accumulate" block)
    | _ -> err "tensorize: block %s body is not a multiply-accumulate" block
  in
  let a_buf, a_idx = a_access and b_buf, b_idx = b_access in
  let bindings = block_var_bindings blk in
  let to_loopspace = List.map (Analysis.subst_expr bindings) in
  let a_idx = to_loopspace a_idx
  and b_idx = to_loopspace b_idx
  and c_idx_ls = to_loopspace c_idx in
  (* Locate the perfect nest. *)
  let names = [ m_loop; n_loop; k_loop ] in
  let outermost =
    let rec first st =
      match st with
      | For { for_var; body; _ } ->
          if List.mem for_var.vname names then Some for_var.vname else first body
      | Seq l -> List.fold_left (fun acc x -> if acc = None then first x else acc) None l
      | If (_, t, e) -> (
          match first t with None -> Option.bind e first | r -> r)
      | Let_stmt (_, _, b) | Alloc (_, b) -> first b
      | Block_stmt b -> first b.blk_body
      | _ -> None
    in
    match first (get s).fn_body with
    | Some n -> n
    | None -> err "tensorize: none of the loops %s found" (String.concat "," names)
  in
  rewrite_loop s outermost (fun x0 e0 k0 b0 ->
      ignore k0;
      let rec collect acc st remaining =
        if remaining = [] then
          match st with
          | Block_stmt b when String.equal b.blk_name block -> List.rev acc
          | _ -> err "tensorize: innermost body is not block %s" block
        else
          match st with
          | For { for_var; extent; body; _ } when List.mem for_var.vname remaining
            ->
              let n =
                match Analysis.const_int_opt extent with
                | Some n -> n
                | None ->
                    err "tensorize: loop %s must have constant extent"
                      for_var.vname
              in
              collect ((for_var.vname, (for_var, n)) :: acc) body
                (List.filter (fun m -> m <> for_var.vname) remaining)
          | _ -> err "tensorize: loops %s are not perfectly nested"
                   (String.concat "," remaining)
      in
      let frames =
        collect
          [ (x0.vname, (x0, match Analysis.const_int_opt e0 with
              | Some n -> n
              | None -> err "tensorize: loop %s must have constant extent" x0.vname)) ]
          b0
          (List.filter (fun n -> n <> x0.vname) names)
      in
      let lookup n = List.assoc n frames in
      let mv, m = lookup m_loop and nv, n = lookup n_loop and kv, k = lookup k_loop in
      (* Verify strides and compute leading dimensions. *)
      let check buf idx ~row ~col ~zero =
        let ld = flat_coeff buf idx row in
        let unit = flat_coeff buf idx col in
        let z = flat_coeff buf idx zero in
        if unit <> 1 then
          err "tensorize: %s is not contiguous along the tile columns"
            buf.buf_name;
        if z <> 0 then
          err "tensorize: %s depends on an unrelated tile axis" buf.buf_name;
        ld
      in
      let lda = check a_buf a_idx ~row:mv ~col:kv ~zero:nv in
      let ldb = check b_buf b_idx ~row:kv ~col:nv ~zero:mv in
      let ldc = check c_buf c_idx_ls ~row:mv ~col:nv ~zero:kv in
      let zero_tile idx =
        List.map
          (fun e ->
            Analysis.simplify
              (Analysis.subst_expr
                 (List.fold_left
                    (fun mp (x : var) -> Analysis.Int_map.add x.vid (Int_imm 0) mp)
                    Analysis.Int_map.empty [ mv; nv; kv ])
                 e))
          idx
      in
      let mma =
        Mma_sync
          { mma_m = m; mma_n = n; mma_k = k;
            mma_a = { op_buf = a_buf; op_origin = zero_tile a_idx; op_ld = Int_imm lda };
            mma_b = { op_buf = b_buf; op_origin = zero_tile b_idx; op_ld = Int_imm ldb };
            mma_c = { op_buf = c_buf; op_origin = zero_tile c_idx_ls; op_ld = Int_imm ldc }
          }
      in
      (* Tile-wide init, guarded on remaining reduction iterators. *)
      match blk.blk_init with
      | None -> mma
      | Some init ->
          let tess = [ mv; nv; kv ] in
          (* the init must run exactly when every non-tensorized loop feeding
             a reduction iterator is at zero *)
          let outer_reduce_zero =
            List.concat_map
              (fun bi ->
                match bi.bi_kind with
                | Spatial -> []
                | Reduce ->
                    Analysis.free_vars_expr bi.bi_bind
                    |> List.filter (fun (x : var) ->
                           not (List.exists (var_equal x) tess))
                    |> List.map (fun (x : var) ->
                           Binop (Eq, Evar x, Int_imm 0)))
              blk.blk_iters
          in
          let mi = Builder.var (m_loop ^ ".init")
          and ni = Builder.var (n_loop ^ ".init") in
          let init_body =
            Analysis.subst_stmt
              (Analysis.Int_map.union (fun _ a _ -> Some a)
                 (Analysis.Int_map.add mv.vid (Evar mi)
                    (Analysis.Int_map.singleton nv.vid (Evar ni)))
                 bindings)
              (Analysis.subst_stmt bindings init)
          in
          let init_nest =
            For
              { for_var = mi; extent = Int_imm m; kind = Serial;
                body =
                  For { for_var = ni; extent = Int_imm n; kind = Serial;
                        body = init_body } }
          in
          let guarded =
            match outer_reduce_zero with
            | [] -> init_nest
            | c :: cs ->
                If (List.fold_left (fun acc e -> Binop (And, acc, e)) c cs,
                    init_nest, None)
          in
          Seq [ guarded; mma ])
