(** Core schedule state and loop-level primitives (Stage II/III composable
    transformations, S3.3.2).

    A schedule wraps a function and rewrites its statement tree in place.
    Loops are addressed by variable name (split produces "<l>.o"/"<l>.i",
    fuse produces "<a>.<b>"); blocks by block name.  Because block iteration
    variables are bound to expressions over loop variables, loop rewrites
    only substitute loop variables — block semantics follow automatically. *)

open Tir.Ir

exception Schedule_error of string

val err : ('a, unit, string, 'b) format4 -> 'a

type t

val create : func -> t
val get : t -> func

(** {1 Lookup} *)

val loop_names : t -> string list
val find_loop_exn : t -> string -> var * expr * for_kind
val rewrite_loop : t -> string -> (var -> expr -> for_kind -> stmt -> stmt) -> unit
val find_block_exn : t -> string -> block
val block_names : t -> string list
val rewrite_block : t -> string -> (block -> stmt) -> unit

(** {1 Loop transformations} *)

val split : t -> loop:string -> factor:int -> string * string
(** Split into outer (ceil(n/factor)) and inner (factor) loops, inserting a
    bounds guard unless the extent divides evenly.  Returns the new
    (outer, inner) names. *)

val fuse : t -> outer:string -> inner:string -> string
(** Fuse two perfectly nested loops; returns the fused loop's name. *)

val outermost_of : t -> string list -> string

val reorder : t -> loops:string list -> unit
(** Reorder a contiguous nest into the given order.  Guards introduced by
    split pass through and are re-emitted innermost; moving a loop above one
    its extent depends on is rejected. *)

(** {1 Annotations} *)

val set_kind : t -> loop:string -> for_kind -> unit
val bind : t -> loop:string -> thread_tag -> unit

val vectorize : t -> loop:string -> unit
(** Requires a constant extent of at most 8 lanes. *)

val unroll : t -> loop:string -> unit
val parallel : t -> loop:string -> unit

(** {1 Helpers for block-level primitives} *)

val block_var_bindings : block -> expr Tir.Analysis.Int_map.t
val single_store_exn : block -> buffer * expr list * expr
val reduce_loop_vars : block -> string list
val chain_to_block :
  chain_vars:string list -> block_name:string -> stmt -> string list option
val rewrite_at_chain_top :
  t -> chain_vars:string list -> ?required:string list -> block_name:string ->
  (stmt -> stmt) -> unit

(** {1 Paths} *)

type path_frame =
  | Pf_for of var * expr * for_kind
  | Pf_if of expr
  | Pf_other

val path_to_block : t -> string -> path_frame list
(** Frames from the root down to (exclusive) the named block. *)

val chain_suffix : path_frame list -> path_frame list
(** Longest suffix made only of loops/guards: the pure chain immediately
    above the block. *)
