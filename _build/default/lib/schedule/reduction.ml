(* rfactor: two-stage reduction (Suriana et al., used by the paper to express
   PRedS-style SDDMM).  Factoring reduction loop [loop] out of [block] turns
   the per-[loop] partial sums into a scratch tensor zeroed up-front and
   written by the first-stage block, followed by a second-stage block
   reducing the scratch tensor into the original output.  After rfactoring,
   [loop] may legally be bound to threads. *)

open Tir
open Tir.Ir
open Sched

let rfactor (s : t) ~(block : string) ~(loop : string) ?(scope = Shared) () :
    string =
  let blk = find_block_exn s block in
  let target, idx, _ = single_store_exn blk in
  let loop_var, loop_extent, _ = find_loop_exn s loop in
  let extent =
    match Analysis.const_int_opt loop_extent with
    | Some n -> n
    | None -> err "rfactor: loop %s must have constant extent" loop
  in
  let rf_name = target.buf_name ^ "_rf" in
  let rf = Builder.buffer ~scope ~dtype:target.buf_dtype rf_name [ Int_imm extent ] in
  let bindings = block_var_bindings blk in
  let outer_idx = List.map (Analysis.subst_expr bindings) idx in
  let same_access b i = buffer_equal b target && i = idx in
  (* Stage 1: redirect the block's accumulation into rf[loop_var]; the block
     iter bound to [loop] becomes spatial. *)
  let rf_idx = [ Evar loop_var ] in
  let redirect =
    Analysis.map_stmt (fun st ->
        match st with
        | Store (b, i, value) ->
            let rec fix e =
              match e with
              | Load (b', i') when same_access b' i' -> Load (rf, rf_idx)
              | Load (b', i') -> Load (b', List.map fix i')
              | Binop (op, a, c) -> Binop (op, fix a, fix c)
              | Unop (op, a) -> Unop (op, fix a)
              | Select (c, t', f') -> Select (fix c, fix t', fix f')
              | Cast (dt, a) -> Cast (dt, fix a)
              | Bsearch bs ->
                  Bsearch
                    { bs with bs_lo = fix bs.bs_lo; bs_hi = fix bs.bs_hi;
                      bs_v = fix bs.bs_v }
              | Int_imm _ | Float_imm _ | Bool_imm _ | Evar _ -> e
            in
            if same_access b i then Store (rf, rf_idx, fix value)
            else Store (b, i, fix value)
        | st -> st)
  in
  let original_init = blk.blk_init in
  (* Stage 1 keeps the block's iterators untouched (a reduction iterator may
     be bound to a fused expression mixing the factored loop with remaining
     reduction loops); the scratch tensor is zeroed by an explicit loop
     before the reduction chain instead of first-iteration init semantics. *)
  rewrite_block s block (fun blk ->
      Block_stmt
        { blk with
          blk_init = None;
          blk_body = redirect blk.blk_body;
          blk_writes = [ { rg_buf = rf; rg_bounds = [ (Int_imm 0, Int_imm extent) ] } ]
        });
  let zv = Builder.var (loop ^ ".zero") in
  let zero_loop =
    For
      { for_var = zv; extent = Int_imm extent; kind = Serial;
        body = Store (rf, [ Evar zv ], Float_imm 0.0) }
  in
  (* Stage 2: C[outer_idx] = sum over rf. *)
  let r2 = Builder.var (loop ^ ".rf") in
  let vr2 = Builder.var ~dtype:Dtype.I32 ("v" ^ loop ^ ".rf") in
  let stage2_init =
    match original_init with
    | Some (Store (b, i, value)) when buffer_equal b target ->
        Some (Store (b, List.map (Analysis.subst_expr bindings) i, value))
    | _ -> None
  in
  let stage2_block =
    Block_stmt
      { blk_name = block ^ ".rf";
        blk_iters =
          [ { bi_var = vr2; bi_dom = Int_imm extent; bi_kind = Reduce;
              bi_bind = Evar r2 } ];
        blk_reads = [ { rg_buf = rf; rg_bounds = [ (Int_imm 0, Int_imm extent) ] } ];
        blk_writes =
          [ { rg_buf = target;
              rg_bounds = List.map (fun e -> (e, Int_imm 1)) outer_idx } ];
        blk_init = stage2_init;
        blk_body =
          Store
            ( target,
              outer_idx,
              Binop (Add, Load (target, outer_idx), Load (rf, [ Evar vr2 ])) ) }
  in
  let stage2 =
    For { for_var = r2; extent = Int_imm extent; kind = Serial; body = stage2_block }
  in
  (* Hoist: allocate rf and emit stage 2 just above the chain of reduction
     loops leading to the (rewritten) stage-1 block.  [loop]'s variable is now
     spatial in the block but still part of the loop chain above it. *)
  let chain_vars = loop :: reduce_loop_vars blk in
  rewrite_at_chain_top s ~chain_vars ~required:chain_vars ~block_name:block
    (fun chain -> Alloc (rf, Seq [ zero_loop; chain; stage2 ]));
  rf_name
