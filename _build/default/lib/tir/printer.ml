(* Pretty-printer producing a TVMScript-like rendering of the IR.  Used in
   documentation, examples and golden tests. *)

open Ir

let rec expr_to_string (e : expr) : string =
  match e with
  | Int_imm n -> string_of_int n
  | Float_imm x -> Printf.sprintf "%g" x
  | Bool_imm b -> string_of_bool b
  | Evar x -> x.vname
  | Load (b, idx) ->
      Printf.sprintf "%s[%s]" b.buf_name
        (String.concat ", " (List.map expr_to_string idx))
  | Binop (((Min | Max) as op), a, b) ->
      Printf.sprintf "%s(%s, %s)" (binop_to_string op) (expr_to_string a)
        (expr_to_string b)
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
        (expr_to_string b)
  | Unop (((Exp | Sqrt | Log | Abs) as op), a) ->
      Printf.sprintf "%s(%s)" (unop_to_string op) (expr_to_string a)
  | Unop (op, a) -> Printf.sprintf "%s%s" (unop_to_string op) (expr_to_string a)
  | Select (c, t, f) ->
      Printf.sprintf "select(%s, %s, %s)" (expr_to_string c) (expr_to_string t)
        (expr_to_string f)
  | Cast (dt, a) ->
      Printf.sprintf "%s(%s)" (Dtype.to_string dt) (expr_to_string a)
  | Bsearch b ->
      Printf.sprintf "binary_search(%s, lo=%s, hi=%s, v=%s)" b.bs_buf.buf_name
        (expr_to_string b.bs_lo) (expr_to_string b.bs_hi)
        (expr_to_string b.bs_v)

let axis_kind_to_string = function
  | Dense_fixed -> "dense_fixed"
  | Dense_variable -> "dense_variable"
  | Sparse_fixed -> "sparse_fixed"
  | Sparse_variable -> "sparse_variable"

let axis_to_string (a : axis) : string =
  let parent =
    match a.ax_parent with None -> "" | Some p -> Printf.sprintf "%s, " p.ax_name
  in
  Printf.sprintf "%s = %s(%s%s)" a.ax_name (axis_kind_to_string a.ax_kind)
    parent
    (expr_to_string a.ax_length)

let for_kind_to_string = function
  | Serial -> ""
  | Parallel -> "parallel "
  | Vectorized -> "vectorized "
  | Unrolled -> "unrolled "
  | Thread_bind tag -> Printf.sprintf "thread<%s> " (thread_tag_to_string tag)

let region_to_string (r : region) : string =
  Printf.sprintf "%s[%s]" r.rg_buf.buf_name
    (String.concat ", "
       (List.map
          (fun (lo, ext) ->
            match ext with
            | Int_imm 1 -> expr_to_string lo
            | _ ->
                Printf.sprintf "%s:%s" (expr_to_string lo)
                  (expr_to_string Builder.(lo +: ext)))
          r.rg_bounds))

let rec stmt_lines ~indent (s : stmt) : string list =
  let pad = String.make (indent * 2) ' ' in
  let line fmt = Printf.ksprintf (fun str -> pad ^ str) fmt in
  match s with
  | Store (b, idx, value) ->
      [ line "%s[%s] = %s" b.buf_name
          (String.concat ", " (List.map expr_to_string idx))
          (expr_to_string value) ]
  | Seq ss -> List.concat_map (stmt_lines ~indent) ss
  | For { for_var; extent; kind; body } ->
      line "for %s in %srange(%s):" for_var.vname (for_kind_to_string kind)
        (expr_to_string extent)
      :: stmt_lines ~indent:(indent + 1) body
  | If (c, t, f) -> (
      let then_lines =
        line "if %s:" (expr_to_string c) :: stmt_lines ~indent:(indent + 1) t
      in
      match f with
      | None -> then_lines
      | Some e -> then_lines @ (line "else:" :: stmt_lines ~indent:(indent + 1) e))
  | Let_stmt (x, value, body) ->
      line "%s = %s" x.vname (expr_to_string value)
      :: stmt_lines ~indent body
  | Block_stmt blk ->
      let iters =
        List.map
          (fun bi ->
            Printf.sprintf "%s: %s(%s) = %s" bi.bi_var.vname
              (match bi.bi_kind with Spatial -> "S" | Reduce -> "R")
              (expr_to_string bi.bi_dom)
              (expr_to_string bi.bi_bind))
          blk.blk_iters
      in
      let header = line "block %s(%s):" blk.blk_name (String.concat ", " iters) in
      let pad1 = String.make ((indent + 1) * 2) ' ' in
      let reads =
        if blk.blk_reads = [] then []
        else
          [ pad1 ^ "reads: "
            ^ String.concat ", " (List.map region_to_string blk.blk_reads) ]
      in
      let writes =
        if blk.blk_writes = [] then []
        else
          [ pad1 ^ "writes: "
            ^ String.concat ", " (List.map region_to_string blk.blk_writes) ]
      in
      let init =
        match blk.blk_init with
        | None -> []
        | Some i ->
            (pad1 ^ "init:") :: stmt_lines ~indent:(indent + 2) i
      in
      (header :: reads) @ writes @ init @ stmt_lines ~indent:(indent + 1) blk.blk_body
  | Alloc (b, body) ->
      let scope =
        match b.buf_scope with
        | Global -> "global"
        | Shared -> "shared"
        | Local -> "local"
      in
      line "%s = alloc(%s, [%s], %s)" b.buf_name
        (Dtype.to_string b.buf_dtype)
        (String.concat ", " (List.map expr_to_string b.buf_shape))
        scope
      :: stmt_lines ~indent body
  | Eval e -> [ line "evaluate(%s)" (expr_to_string e) ]
  | Mma_sync m ->
      [ line "mma_sync[%dx%dx%d](C=%s[%s], A=%s[%s], B=%s[%s])" m.mma_m
          m.mma_n m.mma_k m.mma_c.op_buf.buf_name
          (String.concat ", " (List.map expr_to_string m.mma_c.op_origin))
          m.mma_a.op_buf.buf_name
          (String.concat ", " (List.map expr_to_string m.mma_a.op_origin))
          m.mma_b.op_buf.buf_name
          (String.concat ", " (List.map expr_to_string m.mma_b.op_origin)) ]
  | Sp_iter_stmt sp ->
      let kinds =
        String.concat ""
          (List.map (function Spatial -> "S" | Reduce -> "R") sp.sp_kinds)
      in
      let header =
        line "with sp_iter([%s], \"%s\", \"%s\") as [%s]:"
          (String.concat ", " (List.map (fun (a : axis) -> a.ax_name) sp.sp_axes))
          kinds sp.sp_name
          (String.concat ", " (List.map (fun (x : var) -> x.vname) sp.sp_vars))
      in
      let init =
        match sp.sp_init with
        | None -> []
        | Some i ->
            (String.make ((indent + 1) * 2) ' ' ^ "with init():")
            :: stmt_lines ~indent:(indent + 2) i
      in
      (header :: init) @ stmt_lines ~indent:(indent + 1) sp.sp_body

let stmt_to_string (s : stmt) : string =
  String.concat "\n" (stmt_lines ~indent:0 s)

let buffer_decl_to_string (b : buffer) : string =
  match b.buf_axes with
  | Some axes ->
      Printf.sprintf "%s = match_sparse_buffer((%s), %s)" b.buf_name
        (String.concat ", " (List.map (fun (a : axis) -> a.ax_name) axes))
        (Dtype.to_string b.buf_dtype)
  | None ->
      Printf.sprintf "%s = buffer([%s], %s)" b.buf_name
        (String.concat ", " (List.map expr_to_string b.buf_shape))
        (Dtype.to_string b.buf_dtype)

let func_to_string (f : func) : string =
  let params = List.map buffer_decl_to_string f.fn_params in
  let axes =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (b : buffer) ->
        match b.buf_axes with
        | None -> ()
        | Some axes ->
            List.iter
              (fun (a : axis) ->
                List.iter
                  (fun (anc : axis) ->
                    if not (Hashtbl.mem tbl anc.ax_name) then
                      Hashtbl.add tbl anc.ax_name (axis_to_string anc))
                  (axis_ancestors a))
              axes)
      f.fn_params;
    Hashtbl.fold (fun _ s acc -> s :: acc) tbl [] |> List.sort compare
  in
  String.concat "\n"
    ((Printf.sprintf "def %s:" f.fn_name)
     :: List.map (fun s -> "  " ^ s) (axes @ params)
    @ stmt_lines ~indent:1 f.fn_body)
