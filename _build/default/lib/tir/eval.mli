(** Functional interpreter for Stage III programs.

    Establishes numerical correctness of compiled kernels against dense
    references: all loop kinds (including thread bindings) execute serially;
    TensorIR block init runs when every reduction iterator sits at the start
    of its domain; out-of-range reads yield 0 (guards inserted by split are
    legally hoisted below data-dependent extents); out-of-range stores are
    errors.  Sparse constructs are rejected — run both lowering passes
    first.  The performance model lives in {!Gpusim}. *)

type value =
  | Vi of int
  | Vf of float
  | Vb of bool

exception Eval_error of string

val to_i : value -> int
val to_f : value -> float
val to_b : value -> bool

type env = {
  vars : (int, value) Hashtbl.t;
  bufs : (int, Tensor.t) Hashtbl.t;
}

val make_env : unit -> env
val bind_buffer : env -> Ir.buffer -> Tensor.t -> unit
val lookup_buffer : env -> Ir.buffer -> Tensor.t
val eval_expr : env -> Ir.expr -> value
val eval_int : env -> Ir.expr -> int

val binary_search : Tensor.t -> lo:int -> hi:int -> int -> int
(** Position of a value in a sorted segment; [hi] when absent (Eq. 4's
    find). *)

val upper_bound : Tensor.t -> lo:int -> hi:int -> int -> int
(** Rightmost position in [lo, hi) whose element is <= the value (row
    recovery from indptr for fused iterations). *)

val exec_stmt : env -> Ir.stmt -> unit

val run_func : Ir.func -> Tensor.t list -> unit
(** Execute a function with one tensor per parameter buffer, in order. *)
