(* Scalar element types carried by buffers and expressions.

   [F16] values are stored as OCaml floats but are rounded through half
   precision on every store so that numerical behaviour (and the memory
   footprint accounted by the simulator) matches a half-precision buffer. *)

type t =
  | I32
  | I64
  | F16
  | F32
  | F64
  | Bool

let size_bytes = function
  | I32 -> 4
  | I64 -> 8
  | F16 -> 2
  | F32 -> 4
  | F64 -> 8
  | Bool -> 1

let is_float = function
  | F16 | F32 | F64 -> true
  | I32 | I64 | Bool -> false

let is_int = function
  | I32 | I64 -> true
  | F16 | F32 | F64 | Bool -> false

let to_string = function
  | I32 -> "int32"
  | I64 -> "int64"
  | F16 -> "float16"
  | F32 -> "float32"
  | F64 -> "float64"
  | Bool -> "bool"

let equal (a : t) (b : t) = a = b

(* Round a float through IEEE half precision.  Used when storing into an F16
   buffer so that repeated accumulation exhibits half-precision behaviour. *)
let round_f16 (x : float) : float =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity || x = 0.0
  then x
  else begin
    let bits32 = Int32.bits_of_float x in
    let sign = Int32.to_int (Int32.shift_right_logical bits32 16) land 0x8000 in
    let em = Int32.to_int (Int32.logand bits32 0x7fffffffl) in
    (* exponent and mantissa of the float32 representation *)
    let exp = em lsr 23 in
    let mant = em land 0x7fffff in
    let half =
      if exp >= 0x8f then sign lor 0x7c00 (* overflow -> inf *)
      else if exp <= 0x70 then sign (* underflow -> signed zero (flush) *)
      else
        let h_exp = exp - 112 in
        let h_mant = mant lsr 13 in
        (* round to nearest even on the dropped 13 bits *)
        let round_bit = (mant lsr 12) land 1 in
        let sticky = mant land 0xfff in
        let h_mant =
          if round_bit = 1 && (sticky <> 0 || h_mant land 1 = 1) then h_mant + 1
          else h_mant
        in
        if h_mant = 0x400 then sign lor ((h_exp + 1) lsl 10)
        else sign lor (h_exp lsl 10) lor h_mant
    in
    (* decode back to float *)
    let s = if half land 0x8000 <> 0 then -1.0 else 1.0 in
    let e = (half lsr 10) land 0x1f in
    let m = half land 0x3ff in
    if e = 0x1f then if m = 0 then s *. infinity else Float.nan
    else if e = 0 then s *. ldexp (float_of_int m) (-24)
    else s *. ldexp (float_of_int (m lor 0x400)) (e - 25)
  end
