(* Structural analyses over the IR: substitution, traversal, free variables,
   buffer collection, simplification and linear (stride) analysis of index
   expressions.  These underpin the schedule primitives, the lowering passes
   and the GPU simulator's coalescing model. *)

open Ir

module Int_map = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

let rec subst_expr (env : expr Int_map.t) (e : expr) : expr =
  match e with
  | Int_imm _ | Float_imm _ | Bool_imm _ -> e
  | Evar x -> ( match Int_map.find_opt x.vid env with Some r -> r | None -> e)
  | Load (b, idx) -> Load (b, List.map (subst_expr env) idx)
  | Binop (op, a, b) -> Binop (op, subst_expr env a, subst_expr env b)
  | Unop (op, a) -> Unop (op, subst_expr env a)
  | Select (c, t, f) ->
      Select (subst_expr env c, subst_expr env t, subst_expr env f)
  | Cast (dt, a) -> Cast (dt, subst_expr env a)
  | Bsearch b ->
      Bsearch
        { b with
          bs_lo = subst_expr env b.bs_lo;
          bs_hi = subst_expr env b.bs_hi;
          bs_v = subst_expr env b.bs_v }

let rec subst_stmt (env : expr Int_map.t) (s : stmt) : stmt =
  let se = subst_expr env and ss = subst_stmt env in
  match s with
  | Store (b, idx, value) -> Store (b, List.map se idx, se value)
  | Seq l -> Seq (List.map ss l)
  | For f -> For { f with extent = se f.extent; body = ss f.body }
  | If (c, t, f) -> If (se c, ss t, Option.map ss f)
  | Let_stmt (x, value, body) -> Let_stmt (x, se value, ss body)
  | Block_stmt blk ->
      Block_stmt
        { blk with
          blk_iters =
            List.map
              (fun bi -> { bi with bi_dom = se bi.bi_dom; bi_bind = se bi.bi_bind })
              blk.blk_iters;
          blk_reads = List.map (subst_region env) blk.blk_reads;
          blk_writes = List.map (subst_region env) blk.blk_writes;
          blk_init = Option.map ss blk.blk_init;
          blk_body = ss blk.blk_body }
  | Alloc (b, body) -> Alloc (b, ss body)
  | Eval e -> Eval (se e)
  | Mma_sync m ->
      let op o = { o with op_origin = List.map se o.op_origin; op_ld = se o.op_ld } in
      Mma_sync { m with mma_a = op m.mma_a; mma_b = op m.mma_b; mma_c = op m.mma_c }
  | Sp_iter_stmt sp ->
      Sp_iter_stmt
        { sp with sp_init = Option.map ss sp.sp_init; sp_body = ss sp.sp_body }

and subst_region env (r : region) : region =
  { r with
    rg_bounds =
      List.map (fun (lo, ext) -> (subst_expr env lo, subst_expr env ext)) r.rg_bounds }

let subst1_expr (x : var) (value : expr) e =
  subst_expr (Int_map.singleton x.vid value) e

let subst1_stmt (x : var) (value : expr) s =
  subst_stmt (Int_map.singleton x.vid value) s

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let rec iter_expr (f : expr -> unit) (e : expr) : unit =
  f e;
  match e with
  | Int_imm _ | Float_imm _ | Bool_imm _ | Evar _ -> ()
  | Load (_, idx) -> List.iter (iter_expr f) idx
  | Binop (_, a, b) -> iter_expr f a; iter_expr f b
  | Unop (_, a) -> iter_expr f a
  | Select (c, t, e') -> iter_expr f c; iter_expr f t; iter_expr f e'
  | Cast (_, a) -> iter_expr f a
  | Bsearch b -> iter_expr f b.bs_lo; iter_expr f b.bs_hi; iter_expr f b.bs_v

let rec iter_stmt ?(enter_expr = fun (_ : expr) -> ()) (f : stmt -> unit)
    (s : stmt) : unit =
  f s;
  let ie = iter_expr enter_expr and is = iter_stmt ~enter_expr f in
  match s with
  | Store (_, idx, value) -> List.iter ie idx; ie value
  | Seq l -> List.iter is l
  | For fo -> ie fo.extent; is fo.body
  | If (c, t, e) -> ie c; is t; Option.iter is e
  | Let_stmt (_, value, body) -> ie value; is body
  | Block_stmt blk ->
      List.iter (fun bi -> ie bi.bi_dom; ie bi.bi_bind) blk.blk_iters;
      Option.iter is blk.blk_init;
      is blk.blk_body
  | Alloc (_, body) -> is body
  | Eval e -> ie e
  | Mma_sync m ->
      List.iter
        (fun o -> List.iter ie o.op_origin; ie o.op_ld)
        [ m.mma_a; m.mma_b; m.mma_c ]
  | Sp_iter_stmt sp -> Option.iter is sp.sp_init; is sp.sp_body

(* Rebuild a statement by applying [f] bottom-up to every sub-statement. *)
let rec map_stmt (f : stmt -> stmt) (s : stmt) : stmt =
  let m = map_stmt f in
  let rebuilt =
    match s with
    | Store _ | Eval _ | Mma_sync _ -> s
    | Seq l -> Seq (List.map m l)
    | For fo -> For { fo with body = m fo.body }
    | If (c, t, e) -> If (c, m t, Option.map m e)
    | Let_stmt (x, value, body) -> Let_stmt (x, value, m body)
    | Block_stmt blk ->
        Block_stmt
          { blk with blk_init = Option.map m blk.blk_init; blk_body = m blk.blk_body }
    | Alloc (b, body) -> Alloc (b, m body)
    | Sp_iter_stmt sp ->
        Sp_iter_stmt
          { sp with sp_init = Option.map m sp.sp_init; sp_body = m sp.sp_body }
  in
  f rebuilt

(* ------------------------------------------------------------------ *)
(* Collections                                                         *)
(* ------------------------------------------------------------------ *)

let free_vars_expr (e : expr) : var list =
  let acc = ref Int_map.empty in
  iter_expr
    (function Evar x -> acc := Int_map.add x.vid x !acc | _ -> ())
    e;
  Int_map.fold (fun _ x l -> x :: l) !acc []

let collect_buffers_stmt (s : stmt) : buffer list =
  let acc = ref Int_map.empty in
  let add (b : buffer) = acc := Int_map.add b.buf_id b !acc in
  let on_expr = function
    | Load (b, _) -> add b
    | Bsearch b -> add b.bs_buf
    | _ -> ()
  in
  iter_stmt ~enter_expr:on_expr
    (function
      | Store (b, _, _) -> add b
      | Alloc (b, _) -> add b
      | Mma_sync m ->
          add m.mma_a.op_buf; add m.mma_b.op_buf; add m.mma_c.op_buf
      | _ -> ())
    s;
  Int_map.fold (fun _ b l -> b :: l) !acc []

let stmt_contains_sparse_constructs (s : stmt) : bool =
  let found = ref false in
  let on_expr = function
    | Load (b, _) when is_sparse_buffer b -> found := true
    | _ -> ()
  in
  iter_stmt ~enter_expr:on_expr
    (function
      | Sp_iter_stmt _ -> found := true
      | Store (b, _, _) when is_sparse_buffer b -> found := true
      | _ -> ())
    s;
  !found

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)
(* ------------------------------------------------------------------ *)

let rec simplify (e : expr) : expr =
  let open Builder in
  match e with
  | Int_imm _ | Float_imm _ | Bool_imm _ | Evar _ -> e
  | Load (b, idx) -> Load (b, List.map simplify idx)
  | Binop (op, a, b) -> (
      let a = simplify a and b = simplify b in
      match op with
      | Add -> a +: b
      | Sub -> a -: b
      | Mul -> a *: b
      | Div -> a /: b
      | Floor_div -> a /^ b
      | Floor_mod -> a %^ b
      | Min -> min_ a b
      | Max -> max_ a b
      | _ -> Binop (op, a, b))
  | Unop (op, a) -> Unop (op, simplify a)
  | Select (c, t, f) -> (
      match simplify c with
      | Bool_imm true -> simplify t
      | Bool_imm false -> simplify f
      | c -> Select (c, simplify t, simplify f))
  | Cast (dt, a) -> (
      match simplify a with
      | Int_imm n when Dtype.is_float dt -> Float_imm (float_of_int n)
      | a -> Cast (dt, a))
  | Bsearch b ->
      Bsearch
        { b with
          bs_lo = simplify b.bs_lo;
          bs_hi = simplify b.bs_hi;
          bs_v = simplify b.bs_v }

let const_int_opt (e : expr) : int option =
  match simplify e with Int_imm n -> Some n | _ -> None

(* ------------------------------------------------------------------ *)
(* Linear analysis                                                     *)
(* ------------------------------------------------------------------ *)

(* Decompose [e] as [coeff * x + rest] where [rest] does not mention [x].
   Returns None when [e] is not linear in [x] (e.g. x appears inside a load
   index or a division).  Used by the coalescing model: the stride of an
   address in the thread/lane variable decides the number of memory
   transactions per warp. *)
let rec linear_in (x : var) (e : expr) : (int * expr) option =
  let mentions e = List.exists (fun (y : var) -> y.vid = x.vid) (free_vars_expr e) in
  match e with
  | Evar y when y.vid = x.vid -> Some (1, Int_imm 0)
  | e when not (mentions e) -> Some (0, e)
  | Binop (Add, a, b) -> (
      match (linear_in x a, linear_in x b) with
      | Some (ca, ra), Some (cb, rb) ->
          Some (ca + cb, simplify (Binop (Add, ra, rb)))
      | _ -> None)
  | Binop (Sub, a, b) -> (
      match (linear_in x a, linear_in x b) with
      | Some (ca, ra), Some (cb, rb) ->
          Some (ca - cb, simplify (Binop (Sub, ra, rb)))
      | _ -> None)
  | Binop (Mul, a, b) -> (
      match (linear_in x a, const_int_opt b, const_int_opt a, linear_in x b) with
      | Some (ca, ra), Some k, _, _ ->
          Some (ca * k, simplify (Binop (Mul, ra, Int_imm k)))
      | _, _, Some k, Some (cb, rb) ->
          Some (k * cb, simplify (Binop (Mul, Int_imm k, rb)))
      | _ -> None)
  | Cast (_, a) -> linear_in x a
  | _ -> None
