(** Scalar element types carried by buffers and expressions. *)

type t =
  | I32
  | I64
  | F16
  | F32
  | F64
  | Bool

val size_bytes : t -> int
val is_float : t -> bool
val is_int : t -> bool
val to_string : t -> string
val equal : t -> t -> bool

val round_f16 : float -> float
(** Round through IEEE half precision (round-to-nearest-even, overflow to
    infinity, subnormal flush on underflow).  Applied on every store into an
    F16 buffer so accumulation exhibits half-precision behaviour. *)
