(** Construction DSL for the IR.

    Mirrors the paper's Python-embedded language (Figure 3): axis
    constructors ({!dense_fixed}, {!sparse_variable}, ...),
    {!match_sparse_buffer}, {!sp_iter}, plus arithmetic smart constructors
    with constant folding.  Operators are suffixed with [:] ([+:], [*:],
    [<:], ...) so they do not shadow integer arithmetic. *)

val var_counter : int ref
val buf_counter : int ref

val fresh_id : int ref -> int
(** Next unique id from a counter (used internally and by passes that create
    buffers). *)

val var : ?dtype:Dtype.t -> string -> Ir.var
(** Fresh variable with a unique id; defaults to int32. *)

val fvar : string -> Ir.var
(** Fresh float32 variable. *)

(** {1 Expressions} *)

val int : int -> Ir.expr
val float : float -> Ir.expr
val bool : bool -> Ir.expr
val v : Ir.var -> Ir.expr

val dtype_of : Ir.expr -> Dtype.t
(** Inferred element type of an expression. *)

val ( +: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( -: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( *: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( /: ) : Ir.expr -> Ir.expr -> Ir.expr

val ( /^ ) : Ir.expr -> Ir.expr -> Ir.expr
(** Floor division. *)

val ( %^ ) : Ir.expr -> Ir.expr -> Ir.expr
(** Floor modulo. *)

val min_ : Ir.expr -> Ir.expr -> Ir.expr
val max_ : Ir.expr -> Ir.expr -> Ir.expr
val ( =: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( <>: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( <: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( <=: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( >: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( >=: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( &&: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( ||: ) : Ir.expr -> Ir.expr -> Ir.expr
val not_ : Ir.expr -> Ir.expr
val neg : Ir.expr -> Ir.expr
val exp_ : Ir.expr -> Ir.expr
val sqrt_ : Ir.expr -> Ir.expr
val select : Ir.expr -> Ir.expr -> Ir.expr -> Ir.expr
val cast : Dtype.t -> Ir.expr -> Ir.expr
val f16 : Ir.expr -> Ir.expr
val f32 : Ir.expr -> Ir.expr

val ceil_div : Ir.expr -> Ir.expr -> Ir.expr
(** [(a + b - 1) // b]. *)

(** {1 Buffers} *)

val buffer :
  ?scope:Ir.storage_scope -> ?dtype:Dtype.t -> string -> Ir.expr list ->
  Ir.buffer
(** Dense buffer with the given shape. *)

val match_sparse_buffer :
  ?scope:Ir.storage_scope -> ?dtype:Dtype.t -> string -> Ir.axis list ->
  Ir.buffer
(** Sparse buffer composed of the given axes (the paper's
    [match_sparse_buffer]); only values are stored, auxiliary structure
    lives in the axes. *)

(** {1 Axes (S3.1)} *)

val dense_fixed :
  ?idtype:Dtype.t -> ?parent:Ir.axis -> string -> length:Ir.expr -> Ir.axis
(** Dense axis with a fixed extent; [parent] nests it under another axis
    (contiguous sub-tiling, e.g. the group dimension of SR-BCRS). *)

val dense_variable :
  ?idtype:Dtype.t -> string -> parent:Ir.axis -> length:Ir.expr ->
  nnz:Ir.expr -> indptr:Ir.buffer -> Ir.axis
(** Dense axis whose per-row extent varies (ragged): carries an indptr. *)

val sparse_fixed :
  ?idtype:Dtype.t -> string -> parent:Ir.axis -> length:Ir.expr ->
  nnz_cols:Ir.expr -> indices:Ir.buffer -> Ir.axis
(** Sparse axis with a fixed number of stored coordinates per row (ELL):
    carries an indices buffer. *)

val sparse_variable :
  ?idtype:Dtype.t -> string -> parent:Ir.axis -> length:Ir.expr ->
  nnz:Ir.expr -> indptr:Ir.buffer -> indices:Ir.buffer -> Ir.axis
(** Sparse axis with varying stored coordinates per row (CSR): carries both
    indptr and indices. *)

(** {1 Statements} *)

val store : Ir.buffer -> Ir.expr list -> Ir.expr -> Ir.stmt
val load : Ir.buffer -> Ir.expr list -> Ir.expr
val seq : Ir.stmt list -> Ir.stmt
val for_ : ?kind:Ir.for_kind -> string -> Ir.expr -> (Ir.expr -> Ir.stmt) -> Ir.stmt
val if_ : Ir.expr -> Ir.stmt -> Ir.stmt
val if_else : Ir.expr -> Ir.stmt -> Ir.stmt -> Ir.stmt
val let_ : string -> Ir.expr -> (Ir.expr -> Ir.stmt) -> Ir.stmt
val alloc : Ir.buffer -> Ir.stmt -> Ir.stmt

val sp_iter :
  name:string -> axes:Ir.axis list -> kinds:string ->
  ?init:(Ir.expr list -> Ir.stmt) -> (Ir.expr list -> Ir.stmt) -> Ir.stmt
(** Stage I sparse iteration (Figure 3).  [kinds] is the "SRS"-style string
    ('S' spatial / 'R' reduction, one per axis); [init] receives the same
    iteration variables as the body and becomes the block init after
    lowering. *)

val func :
  ?domains:(Ir.buffer * Ir.expr * Ir.expr) list -> string -> Ir.buffer list ->
  Ir.stmt -> Ir.func
