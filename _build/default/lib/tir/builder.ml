(* Construction DSL for the IR: fresh variables/buffers, axis constructors
   mirroring the paper's Python interface (dense_fixed, sparse_variable, ...),
   arithmetic smart constructors with constant folding, and statement
   builders. *)

open Ir

let var_counter = ref 0
let buf_counter = ref 0

let fresh_id counter =
  incr counter;
  !counter

let var ?(dtype = Dtype.I32) name : var =
  { vid = fresh_id var_counter; vname = name; vdtype = dtype }

let fvar name : var = var ~dtype:Dtype.F32 name

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let int n = Int_imm n
let float x = Float_imm x
let bool b = Bool_imm b
let v (x : var) = Evar x

let rec dtype_of (e : expr) : Dtype.t =
  match e with
  | Int_imm _ -> Dtype.I32
  | Float_imm _ -> Dtype.F32
  | Bool_imm _ -> Dtype.Bool
  | Evar x -> x.vdtype
  | Load (b, _) -> b.buf_dtype
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> Dtype.Bool
  | Binop (_, a, b) ->
      let da = dtype_of a and db = dtype_of b in
      if Dtype.is_float da then da else if Dtype.is_float db then db else da
  | Unop (Not, _) -> Dtype.Bool
  | Unop ((Exp | Sqrt | Log), _) -> Dtype.F32
  | Unop ((Neg | Abs), a) -> dtype_of a
  | Select (_, a, _) -> dtype_of a
  | Cast (dt, _) -> dt
  | Bsearch b -> b.bs_buf.buf_dtype

let rec ( +: ) a b =
  match (a, b) with
  | Int_imm x, Int_imm y -> Int_imm (Stdlib.( + ) x y)
  | Float_imm x, Float_imm y -> Float_imm (x +. y)
  | Int_imm 0, e | e, Int_imm 0 -> e
  | Binop (Add, e, Int_imm x), Int_imm y ->
      e +: Int_imm (Stdlib.( + ) x y)
  (* (x - y) + y = x: lets fused-iteration offsets collapse back to the
     fused loop variable *)
  | Binop (Sub, x, y), e when y = e -> x
  | e, Binop (Sub, x, y) when y = e -> x
  | _ -> Binop (Add, a, b)

let ( -: ) a b =
  match (a, b) with
  | Int_imm x, Int_imm y -> Int_imm (Stdlib.( - ) x y)
  | Float_imm x, Float_imm y -> Float_imm (x -. y)
  | e, Int_imm 0 -> e
  | _ -> Binop (Sub, a, b)

let ( *: ) a b =
  match (a, b) with
  | Int_imm x, Int_imm y -> Int_imm (Stdlib.( * ) x y)
  | Float_imm x, Float_imm y -> Float_imm (x *. y)
  | Int_imm 0, _ | _, Int_imm 0 -> Int_imm 0
  | Int_imm 1, e | e, Int_imm 1 -> e
  | _ -> Binop (Mul, a, b)

let ( /: ) a b =
  match (a, b) with
  | Float_imm x, Float_imm y -> Float_imm (x /. y)
  | e, Float_imm 1.0 -> e
  | _ -> Binop (Div, a, b)

let ( /^ ) a b =
  (* floor division *)
  match (a, b) with
  | Int_imm x, Int_imm y when y <> 0 ->
      Int_imm (if Stdlib.( >= ) x 0 then Stdlib.( / ) x y
               else Stdlib.( - ) (Stdlib.( / ) (Stdlib.( + ) x 1) y) 1)
  | e, Int_imm 1 -> e
  | _ -> Binop (Floor_div, a, b)

let ( %^ ) a b =
  match (a, b) with
  | Int_imm x, Int_imm y when y <> 0 ->
      let r = Stdlib.( mod ) x y in
      Int_imm (if Stdlib.( >= ) r 0 then r else Stdlib.( + ) r y)
  | _, Int_imm 1 -> Int_imm 0
  | _ -> Binop (Floor_mod, a, b)

let min_ a b =
  match (a, b) with
  | Int_imm x, Int_imm y -> Int_imm (Stdlib.min x y)
  | _ -> Binop (Min, a, b)

let max_ a b =
  match (a, b) with
  | Int_imm x, Int_imm y -> Int_imm (Stdlib.max x y)
  | _ -> Binop (Max, a, b)

let ( =: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( &&: ) a b = Binop (And, a, b)
let ( ||: ) a b = Binop (Or, a, b)
let not_ a = Unop (Not, a)
let neg a = Unop (Neg, a)
let exp_ a = Unop (Exp, a)
let sqrt_ a = Unop (Sqrt, a)
let select c t f = Select (c, t, f)
let cast dt e = Cast (dt, e)
let f16 e = Cast (Dtype.F16, e)
let f32 e = Cast (Dtype.F32, e)

(* Ceiling division on expressions: (a + b - 1) // b *)
let ceil_div a b = (a +: b -: int 1) /^ b

(* ------------------------------------------------------------------ *)
(* Buffers                                                             *)
(* ------------------------------------------------------------------ *)

let buffer ?(scope = Global) ?(dtype = Dtype.F32) name shape : buffer =
  { buf_id = fresh_id buf_counter;
    buf_name = name;
    buf_dtype = dtype;
    buf_shape = shape;
    buf_axes = None;
    buf_scope = scope }

(* Bind a sparse buffer to a composition of axes (the paper's
   match_sparse_buffer).  The dense [buf_shape] records the per-axis
   coordinate-space extents for region analysis. *)
let match_sparse_buffer ?(scope = Global) ?(dtype = Dtype.F32) name
    (axes : axis list) : buffer =
  let shape = List.map (fun (a : axis) -> a.ax_length) axes in
  { buf_id = fresh_id buf_counter;
    buf_name = name;
    buf_dtype = dtype;
    buf_shape = shape;
    buf_axes = Some axes;
    buf_scope = scope }

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

let dense_fixed ?(idtype = Dtype.I32) ?parent name ~length : axis =
  { ax_name = name; ax_kind = Dense_fixed; ax_parent = parent;
    ax_length = length; ax_nnz = None; ax_nnz_cols = None;
    ax_indptr = None; ax_indices = None; ax_idtype = idtype }

let dense_variable ?(idtype = Dtype.I32) name ~parent ~length ~nnz ~indptr :
    axis =
  { ax_name = name; ax_kind = Dense_variable; ax_parent = Some parent;
    ax_length = length; ax_nnz = Some nnz; ax_nnz_cols = None;
    ax_indptr = Some indptr; ax_indices = None; ax_idtype = idtype }

let sparse_fixed ?(idtype = Dtype.I32) name ~parent ~length ~nnz_cols ~indices :
    axis =
  { ax_name = name; ax_kind = Sparse_fixed; ax_parent = Some parent;
    ax_length = length; ax_nnz = None; ax_nnz_cols = Some nnz_cols;
    ax_indptr = None; ax_indices = Some indices; ax_idtype = idtype }

let sparse_variable ?(idtype = Dtype.I32) name ~parent ~length ~nnz ~indptr
    ~indices : axis =
  { ax_name = name; ax_kind = Sparse_variable; ax_parent = Some parent;
    ax_length = length; ax_nnz = Some nnz; ax_nnz_cols = None;
    ax_indptr = Some indptr; ax_indices = Some indices; ax_idtype = idtype }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let store buf idx value = Store (buf, idx, value)
let load buf idx = Load (buf, idx)

let seq = function
  | [ s ] -> s
  | ss -> Seq ss

let for_ ?(kind = Serial) name extent (f : expr -> stmt) : stmt =
  let x = var name in
  For { for_var = x; extent; kind; body = f (Evar x) }

let if_ cond then_ = If (cond, then_, None)
let if_else cond then_ else_ = If (cond, then_, Some else_)
let let_ name value (f : expr -> stmt) : stmt =
  let x = var ~dtype:(dtype_of value) name in
  Let_stmt (x, value, f (Evar x))

let alloc buf body = Alloc (buf, body)

(* Stage I sparse iteration.  [kinds] is the paper's "SRS"-style string:
   'S' for spatial, 'R' for reduction, one character per axis.  [init] builds
   the paper's "with init():" statement and receives the same iteration
   variables as the body. *)
let sp_iter ~name ~axes ~kinds ?(init : (expr list -> stmt) option)
    (f : expr list -> stmt) : stmt =
  let n_axes = List.length axes in
  if Stdlib.( <> ) (String.length kinds) n_axes then
    invalid_arg "sp_iter: kinds string length must match number of axes";
  let parse = function
    | 'S' -> Spatial
    | 'R' -> Reduce
    | c -> invalid_arg (Printf.sprintf "sp_iter: bad iterator kind %c" c)
  in
  let kinds = List.init n_axes (fun i -> parse kinds.[i]) in
  let vars =
    List.map
      (fun (a : axis) -> var ~dtype:a.ax_idtype (String.lowercase_ascii a.ax_name))
      axes
  in
  let var_exprs = List.map (fun x -> Evar x) vars in
  Sp_iter_stmt
    { sp_name = name; sp_axes = axes; sp_kinds = kinds; sp_vars = vars;
      sp_fused = List.init n_axes (fun i -> [ i ]);
      sp_init = Option.map (fun g -> g var_exprs) init;
      sp_body = f var_exprs }

let func ?(domains = []) name params body : func =
  { fn_name = name; fn_params = params; fn_body = body; fn_domains = domains }
