(* Runtime storage bound to IR buffers.  Row-major, flat.  Float16 buffers
   round every stored value through half precision. *)

type data =
  | F of float array
  | I of int array
  | B of bool array

type t = {
  dtype : Dtype.t;
  shape : int array;
  data : data;
}

let numel (t : t) = Array.fold_left ( * ) 1 t.shape

let create (dtype : Dtype.t) (shape : int list) : t =
  let shape = Array.of_list shape in
  let n = Array.fold_left ( * ) 1 shape in
  let data =
    if Dtype.is_float dtype then F (Array.make n 0.0)
    else if dtype = Dtype.Bool then B (Array.make n false)
    else I (Array.make n 0)
  in
  { dtype; shape; data }

let of_float_array ?(dtype = Dtype.F32) (shape : int list) (a : float array) : t
    =
  let t = { dtype; shape = Array.of_list shape; data = F a } in
  if numel t <> Array.length a then invalid_arg "Tensor.of_float_array: shape";
  t

let of_int_array ?(dtype = Dtype.I32) (shape : int list) (a : int array) : t =
  let t = { dtype; shape = Array.of_list shape; data = I a } in
  if numel t <> Array.length a then invalid_arg "Tensor.of_int_array: shape";
  t

let flat_index (t : t) (idx : int array) : int =
  let n = Array.length t.shape in
  if Array.length idx <> n then
    invalid_arg
      (Printf.sprintf "Tensor.flat_index: rank mismatch (%d vs %d)"
         (Array.length idx) n);
  let off = ref 0 in
  for d = 0 to n - 1 do
    let i = idx.(d) in
    if i < 0 || i >= t.shape.(d) then
      invalid_arg
        (Printf.sprintf "Tensor.flat_index: index %d out of bounds [0,%d) in dim %d"
           i t.shape.(d) d);
    off := (!off * t.shape.(d)) + i
  done;
  !off

let get_f (t : t) (flat : int) : float =
  match t.data with
  | F a -> a.(flat)
  | I a -> float_of_int a.(flat)
  | B a -> if a.(flat) then 1.0 else 0.0

let get_i (t : t) (flat : int) : int =
  match t.data with
  | I a -> a.(flat)
  | F a -> int_of_float a.(flat)
  | B a -> if a.(flat) then 1 else 0

let set_f (t : t) (flat : int) (x : float) : unit =
  match t.data with
  | F a -> a.(flat) <- (if t.dtype = Dtype.F16 then Dtype.round_f16 x else x)
  | I a -> a.(flat) <- int_of_float x
  | B a -> a.(flat) <- (x <> 0.0)

let set_i (t : t) (flat : int) (x : int) : unit =
  match t.data with
  | I a -> a.(flat) <- x
  | F a -> a.(flat) <- float_of_int x
  | B a -> a.(flat) <- (x <> 0)

let fill_f (t : t) (x : float) : unit =
  match t.data with
  | F a -> Array.fill a 0 (Array.length a) x
  | I a -> Array.fill a 0 (Array.length a) (int_of_float x)
  | B a -> Array.fill a 0 (Array.length a) (x <> 0.0)

let to_float_array (t : t) : float array =
  Array.init (numel t) (fun i -> get_f t i)

let to_int_array (t : t) : int array = Array.init (numel t) (fun i -> get_i t i)

let copy (t : t) : t =
  let data =
    match t.data with
    | F a -> F (Array.copy a)
    | I a -> I (Array.copy a)
    | B a -> B (Array.copy a)
  in
  { t with shape = Array.copy t.shape; data }

(* Maximum |a - b| over all elements; both tensors must have equal numel. *)
let max_abs_diff (a : t) (b : t) : float =
  let n = numel a in
  if numel b <> n then invalid_arg "Tensor.max_abs_diff: size mismatch";
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let d = Float.abs (get_f a i -. get_f b i) in
    if d > !worst then worst := d
  done;
  !worst

let bytes (t : t) : int = numel t * Dtype.size_bytes t.dtype
