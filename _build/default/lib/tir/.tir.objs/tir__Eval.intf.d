lib/tir/eval.mli: Hashtbl Ir Tensor
