lib/tir/tensor.ml: Array Dtype Float Printf
