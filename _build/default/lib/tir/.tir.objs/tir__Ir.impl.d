lib/tir/ir.ml: Dtype String
