lib/tir/eval.ml: Analysis Array Dtype Float Hashtbl Ir List Option Printf Tensor
