lib/tir/printer.ml: Builder Dtype Hashtbl Ir List Printf String
