lib/tir/analysis.ml: Builder Dtype Int Ir List Map Option
