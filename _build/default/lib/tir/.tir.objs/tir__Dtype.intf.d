lib/tir/dtype.mli:
