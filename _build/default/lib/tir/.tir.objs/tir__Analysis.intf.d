lib/tir/analysis.mli: Ir Map
