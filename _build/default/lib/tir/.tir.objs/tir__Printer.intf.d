lib/tir/printer.mli: Ir
