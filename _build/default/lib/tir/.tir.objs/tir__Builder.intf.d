lib/tir/builder.mli: Dtype Ir
