lib/tir/builder.ml: Dtype Ir List Option Printf Stdlib String
