lib/tir/tensor.mli: Dtype
