lib/tir/dtype.ml: Float Int32
