(** Runtime storage bound to IR buffers: flat row-major arrays of floats,
    ints or booleans.  Float16 buffers round every stored value through half
    precision ({!Dtype.round_f16}). *)

type data =
  | F of float array
  | I of int array
  | B of bool array

type t = {
  dtype : Dtype.t;
  shape : int array;
  data : data;
}

val numel : t -> int

val create : Dtype.t -> int list -> t
(** Zero-initialized tensor. *)

val of_float_array : ?dtype:Dtype.t -> int list -> float array -> t
val of_int_array : ?dtype:Dtype.t -> int list -> int array -> t

val flat_index : t -> int array -> int
(** Row-major flat offset; raises [Invalid_argument] when out of bounds. *)

val get_f : t -> int -> float
(** Read element at a flat offset as a float. *)

val get_i : t -> int -> int
val set_f : t -> int -> float -> unit
val set_i : t -> int -> int -> unit
val fill_f : t -> float -> unit
val to_float_array : t -> float array
val to_int_array : t -> int array
val copy : t -> t

val max_abs_diff : t -> t -> float
(** Maximum elementwise |a - b|; sizes must match. *)

val bytes : t -> int
(** Storage size in bytes (used for memory-footprint accounting). *)
