(** Pretty-printer producing a TVMScript-like rendering of the IR, used by
    the examples, the CLI and golden tests. *)

val expr_to_string : Ir.expr -> string
val axis_kind_to_string : Ir.axis_kind -> string
val axis_to_string : Ir.axis -> string
val for_kind_to_string : Ir.for_kind -> string
val region_to_string : Ir.region -> string

val stmt_lines : indent:int -> Ir.stmt -> string list
(** Rendered lines at the given indentation depth (2 spaces per level). *)

val stmt_to_string : Ir.stmt -> string
val buffer_decl_to_string : Ir.buffer -> string

val func_to_string : Ir.func -> string
(** Whole function: axis declarations, buffer declarations, then the body. *)
