(** SDDMM kernels (S4.2.2): out_ij = A_ij * sum_k X_ik Y_kj over A's
    non-zeros.  The SparseTIR kernel composes stage-I sparse_fuse with
    stage-II rfactor (PRedS-style two-stage reduction) and vectorized
    loads; the baselines are restricted subsets of that space.  Output
    buffer is named "OUT" (length nnz). *)

open Formats

type compiled = {
  fn : Tir.Ir.func;
  bindings : Gpusim.bindings;
  out : Tir.Tensor.t;
}

val stage1 : Csr.t -> feat:int -> Tir.Ir.func
val base_bindings : Csr.t -> Dense.t -> Dense.t -> Gpusim.bindings * Tir.Tensor.t

val taco : Csr.t -> Dense.t -> Dense.t -> feat:int -> compiled
(** Row-per-thread, no fusion, serial reduction. *)

val cusparse : Csr.t -> Dense.t -> Dense.t -> feat:int -> compiled
(** Generic kernel, poor on highly sparse matrices. *)

val dgl : Csr.t -> Dense.t -> Dense.t -> feat:int -> compiled
(** FeatGraph strategy: stage-I fusion (edge-per-thread), serial
    reduction — the Figure 14 baseline. *)

val two_stage :
  ?edges:int -> ?group:int -> ?vec:int -> Csr.t -> Dense.t -> Dense.t ->
  feat:int -> compiled
(** Fusion + rfactor two-stage reduction + vectorized loads: [group] threads
    cooperate per non-zero, [edges] non-zeros per block, [vec]-wide loads. *)

val dgsparse : Csr.t -> Dense.t -> Dense.t -> feat:int -> compiled
(** PRedS at its published configuration. *)

val sparsetir :
  ?edges:int -> ?group:int -> ?vec:int -> Csr.t -> Dense.t -> Dense.t ->
  feat:int -> compiled
(** The tuned point of the two-stage space. *)
