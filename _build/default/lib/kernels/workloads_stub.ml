(* Tiny deterministic RNG for per-head value generation inside kernels,
   avoiding a dependency cycle with the workloads library. *)

let rng (seed : int) : unit -> float =
  let state = ref (Int64.of_int ((seed * 2654435761) + 12345)) in
  fun () ->
    state := Int64.add !state 0x9e3779b97f4a7c15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_float (Int64.logand z 0xfffffffffffffL) /. 4503599627370496.0
