(** Dense GEMM kernels standing in for cuBLAS (S4.3/S4.4 baselines), plus
    the GEMM/ReLU step builders used to chain end-to-end models. *)

open Formats

type compiled = {
  fn : Tir.Ir.func;
  bindings : Gpusim.bindings;
  out : Tir.Tensor.t;
}

val stage1 : m:int -> n:int -> k:int -> dtype:Tir.Dtype.t -> Tir.Ir.func
val bindings_of : Dense.t -> Dense.t -> dtype:Tir.Dtype.t -> Gpusim.bindings * Tir.Tensor.t

val cublas_tc : Dense.t -> Dense.t -> compiled
(** Half-precision tensor-core GEMM: 16x16 MMA tiles, operands staged in
    shared memory.  Dimensions must be multiples of 16. *)

val cublas_fp32 : Dense.t -> Dense.t -> compiled
(** fp32 CUDA-core GEMM with classic two-level tiling. *)

val fp32_step :
  tag:string -> ?trans_x:bool -> x_t:Tir.Tensor.t -> w_t:Tir.Tensor.t ->
  c_t:Tir.Tensor.t -> unit -> Tir.Ir.func * Gpusim.bindings
(** C = op(X) W over existing tensors; [trans_x] computes X^T W (backward
    passes). *)

val relu_step :
  tag:string -> ?grad:Tir.Tensor.t -> x_t:Tir.Tensor.t -> out_t:Tir.Tensor.t ->
  unit -> Tir.Ir.func * Gpusim.bindings
(** out = max(x, 0); with [grad], out = grad masked by x > 0. *)
