lib/kernels/gemm.mli: Dense Formats Gpusim Tir
