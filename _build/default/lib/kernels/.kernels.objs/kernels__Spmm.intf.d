lib/kernels/spmm.mli: Csr Dense Formats Gpusim Hyb Schedule Sparse_ir Tir
