lib/kernels/sptensor.mli: Csf Csr Dense Formats Gpusim Tir
