lib/kernels/sptensor.ml: Array Builder Csf Csr Dense Dtype Formats Gpusim Ir List Schedule Sddmm Sparse_ir Spmm Tensor Tir
