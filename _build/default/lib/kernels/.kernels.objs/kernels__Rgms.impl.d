lib/kernels/rgms.ml: Array Builder Csr Dense Dtype Ell Formats Gemm Gpusim Hashtbl Hyb Ir List Printf Schedule Sparse_ir Spmm Tensor Tir
