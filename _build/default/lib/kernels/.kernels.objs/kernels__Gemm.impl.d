lib/kernels/gemm.ml: Array Builder Dense Dtype Formats Gpusim Ir Schedule Sparse_ir Tensor Tir
