lib/kernels/sddmm.mli: Csr Dense Formats Gpusim Tir
