lib/kernels/rgms.mli: Csr Dense Ell Formats Gpusim Hyb Tir
