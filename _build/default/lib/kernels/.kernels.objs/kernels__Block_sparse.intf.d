lib/kernels/block_sparse.mli: Bsr Csr Dbsr Dense Formats Gpusim Sr_bcrs Tir
