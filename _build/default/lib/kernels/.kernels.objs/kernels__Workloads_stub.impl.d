lib/kernels/workloads_stub.ml: Int64
