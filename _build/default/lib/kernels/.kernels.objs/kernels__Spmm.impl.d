lib/kernels/spmm.ml: Builder Csr Dense Dtype Ell Formats Gpusim Hyb Ir List Printf Schedule Sparse_ir Tensor Tir
