lib/kernels/sddmm.ml: Builder Csr Dense Dtype Formats Gpusim Ir Schedule Sparse_ir Tensor Tir
