lib/kernels/block_sparse.ml: Array Bsr Builder Csr Dbsr Dense Dtype Formats Fun Gpusim Ir Schedule Sparse_ir Sr_bcrs Tensor Tir Workloads_stub
