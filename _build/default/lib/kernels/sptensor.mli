(** Higher-order and fused sparse kernels beyond the headline evaluation:
    MTTKRP over CSF (the deepest axis chain the language supports) and
    FusedMM (fused SDDMM+SpMM, expressible per the paper's related work). *)

open Formats

type compiled = {
  fn : Tir.Ir.func;
  bindings : Gpusim.bindings;
  out : Tir.Tensor.t;
}

val mttkrp_stage1 : Csf.t -> rank:int -> Tir.Ir.func
val bindings_of : Csf.t -> Dense.t -> Dense.t -> Gpusim.bindings * Tir.Tensor.t

val mttkrp : Csf.t -> Dense.t -> Dense.t -> compiled
(** Y[i,r] = sum over (j,k) of T[i,j,k] B[j,r] C[k,r], rows across blocks,
    rank across threads, register accumulation over both reductions. *)

val fusedmm_stage1 : Csr.t -> feat:int -> out_feat:int -> Tir.Ir.func

val fusedmm : Csr.t -> Dense.t -> Dense.t -> Dense.t -> compiled
(** Y[i,l] = sum_j (sum_k X[i,k] Z[j,k]) V[j,l] as one 4-deep iteration. *)

val fusedmm_reference : Csr.t -> Dense.t -> Dense.t -> Dense.t -> Dense.t

val unfused :
  Csr.t -> Dense.t -> Dense.t -> Dense.t ->
  (Tir.Ir.func * Gpusim.bindings) list * Tir.Tensor.t
(** SDDMM-then-SpMM with the edge scores materialized in HBM. *)
