(** Block-structured kernels for sparse attention and pruned transformers
    (S4.3), all half precision: batched BSR SpMM/SDDMM with the tensorize
    schedule (Triton-style vs shared-staged), DBSR SpMM (skipping empty
    block rows), and SR-BCRS SpMM (gathered-row MMA panels). *)

open Formats

type compiled = {
  fn : Tir.Ir.func;
  bindings : Gpusim.bindings;
  out : Tir.Tensor.t;
}

val bsr_spmm_stage1 : Bsr.t -> heads:int -> feat:int -> Tir.Ir.func
val bsr_head_data : Bsr.t -> heads:int -> seed:int -> Tir.Tensor.t
val bsr_spmm_bindings : Bsr.t -> heads:int -> Tir.Tensor.t -> Gpusim.bindings * Tir.Tensor.t
val schedule_bsr_spmm :
  Tir.Ir.func -> Bsr.t -> feat:int -> staged:bool -> block:string -> Tir.Ir.func

val bsr_spmm : ?staged:bool -> Bsr.t -> heads:int -> Tir.Tensor.t -> feat:int -> compiled
val triton_bsr_spmm : Bsr.t -> heads:int -> Tir.Tensor.t -> feat:int -> compiled
(** Triton block-sparse: no staging, fixed coarse block granularity. *)

val csr_spmm_batched : Csr.t -> heads:int -> Tir.Tensor.t -> feat:int -> compiled
(** Scalar-core batched CSR kernel, the SparseTIR-CSR bar of Figure 16. *)

val bsr_sddmm :
  ?staged:bool -> Bsr.t -> heads:int -> feat:int -> Tir.Tensor.t ->
  Tir.Tensor.t -> compiled

val dbsr_spmm : ?staged:bool -> Dbsr.t -> Dense.t -> compiled
(** Figure 17: empty block rows launch no thread blocks. *)

val bsr_spmm_single : ?staged:bool -> Bsr.t -> Dense.t -> compiled
(** Plain BSR over one matrix: every block row gets a thread block. *)

val sr_bcrs_spmm : Sr_bcrs.t -> Dense.t -> compiled
(** Figure 19: gathered X rows staged in shared memory, then an MMA over
    each t x g panel. *)
