(** Sparse attention mask generators (S4.3.1): the Longformer band and the
    Pixelated-Butterfly block pattern, at a uniformly reduced scale. *)

open Formats

val band : ?value:float -> size:int -> band:int -> unit -> Csr.t
val butterfly : ?value:float -> size:int -> block:int -> unit -> Csr.t

val batched_dense :
  ?seed:int -> heads:int -> rows:int -> cols:int -> unit -> Tir.Tensor.t
(** Random half-precision operand [heads; rows; cols]. *)
