(** Pruned-transformer weight generators (S4.3.2): block pruning with
    clustered empty block rows (DBSR's target) and movement pruning with
    column-vector correlation (SR-BCRS's target). *)

open Formats

val bert_shapes : (int * int) list

val block_pruned :
  ?seed:int -> rows:int -> cols:int -> block:int -> density:float ->
  ?zero_row_frac:float -> unit -> Csr.t

val movement_pruned :
  ?seed:int -> rows:int -> cols:int -> density:float -> ?tile:int ->
  ?tile_fill:float -> unit -> Csr.t

val activations : ?seed:int -> in_features:int -> seq_len:int -> unit -> Dense.t
