(* Point-cloud workloads for 3D sparse convolution (S4.4.2), standing in for
   SemanticKITTI: points are generated along piecewise-linear "scan" surfaces
   in a voxel grid (LiDAR-like sheets of occupancy), then each convolution
   kernel offset yields one relation — a bipartite map from input voxels to
   output voxels with at most one non-zero per row (ELL(1)), exactly the
   RGMS equivalence of Figure 22. *)

open Formats

type t = {
  voxels : (int * int * int) array;      (* coordinates of occupied voxels *)
  index_of : (int * int * int, int) Hashtbl.t;
  grid : int;
}

(* LiDAR-sheet generator: random planar-ish walks through the grid. *)
let generate ?(seed = 31) ~(grid : int) ~(target_points : int) () : t =
  let g = Rng.create seed in
  let index_of = Hashtbl.create (2 * target_points) in
  let voxels = ref [] in
  let count = ref 0 in
  let add v =
    if not (Hashtbl.mem index_of v) then begin
      Hashtbl.replace index_of v !count;
      voxels := v :: !voxels;
      incr count
    end
  in
  while !count < target_points do
    (* start a new sheet *)
    let x = ref (Rng.int g grid)
    and y = ref (Rng.int g grid)
    and z = ref (Rng.int g grid) in
    let steps = 64 + Rng.int g 192 in
    for _ = 1 to steps do
      add (!x, !y, !z);
      (* move mostly within a plane (LiDAR sheet) *)
      let d = Rng.int g 10 in
      if d < 4 then x := min (grid - 1) (max 0 (!x + Rng.int g 3 - 1));
      if d >= 4 && d < 8 then y := min (grid - 1) (max 0 (!y + Rng.int g 3 - 1));
      if d >= 8 then z := min (grid - 1) (max 0 (!z + Rng.int g 3 - 1))
    done
  done;
  { voxels = Array.of_list (List.rev !voxels); index_of; grid }

let n_points (t : t) = Array.length t.voxels

(* Relations of a 3x3x3 (kernel_size=3) submanifold sparse convolution: for
   each offset (dx,dy,dz), relation r maps output voxel i to input voxel j
   when coord(i) + offset = coord(j).  Each relation is an n x n matrix with
   at most one non-zero per row — ELL(1). *)
let conv_relations ?(kernel = 3) (t : t) : Csr.t array =
  let n = n_points t in
  let half = kernel / 2 in
  let offsets = ref [] in
  for dx = -half to half do
    for dy = -half to half do
      for dz = -half to half do
        offsets := (dx, dy, dz) :: !offsets
      done
    done
  done;
  List.rev !offsets
  |> List.map (fun (dx, dy, dz) ->
         let entries = ref [] in
         Array.iteri
           (fun i (x, y, z) ->
             match Hashtbl.find_opt t.index_of (x + dx, y + dy, z + dz) with
             | Some j -> entries := (i, j, 1.0) :: !entries
             | None -> ())
           t.voxels;
         Csr.of_coo
           { Coo.rows = n; cols = n; entries = Array.of_list !entries })
  |> Array.of_list

(* MinkowskiNet layer channel configurations benchmarked in Figure 23
   (C_in, C_out). *)
let minkowski_channels =
  [ (16, 16); (16, 32); (32, 32); (32, 64); (64, 64); (64, 96); (96, 96);
    (96, 128); (128, 128); (128, 192); (192, 192); (192, 256) ]
