lib/workloads/rng.ml: Array Float Fun Hashtbl Int64
