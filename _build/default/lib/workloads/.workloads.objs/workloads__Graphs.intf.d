lib/workloads/graphs.mli: Csr Formats Rng
