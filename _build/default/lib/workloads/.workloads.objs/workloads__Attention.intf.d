lib/workloads/attention.mli: Csr Formats Tir
