lib/workloads/pruning.mli: Csr Dense Formats
