lib/workloads/rng.mli:
