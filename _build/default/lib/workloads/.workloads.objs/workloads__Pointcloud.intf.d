lib/workloads/pointcloud.mli: Formats Hashtbl
