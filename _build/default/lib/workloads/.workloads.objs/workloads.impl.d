lib/workloads/workloads.ml: Attention Graphs Hetero Pointcloud Pruning Rng
