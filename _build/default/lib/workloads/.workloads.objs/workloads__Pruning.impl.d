lib/workloads/pruning.ml: Array Coo Csr Dense Float Formats Rng
