lib/workloads/attention.ml: Array Coo Csr Formats Rng Tir
