lib/workloads/hetero.mli: Csr Formats
