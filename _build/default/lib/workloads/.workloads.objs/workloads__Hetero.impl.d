lib/workloads/hetero.ml: Array Coo Csr Float Formats Hashtbl List Printf Rng String
