lib/workloads/pointcloud.ml: Array Coo Csr Formats Hashtbl List Rng
