lib/workloads/graphs.ml: Array Csr Float Formats Hashtbl Int List Printf Rng Set String
