(** Deterministic splitmix64 PRNG: all workloads are reproducible from their
    seed, independent of OCaml's global Random state. *)

type t

val create : int -> t
val next_int64 : t -> int64
val int : t -> int -> int
val float : t -> float
val normal : t -> float
val pareto : t -> alpha:float -> xmin:float -> float
val shuffle : t -> 'a array -> unit
val distinct : t -> n:int -> k:int -> int array
