(** Point-cloud workloads for 3D sparse convolution (S4.4.2), standing in
    for SemanticKITTI: LiDAR-like sheets of voxel occupancy; each kernel
    offset yields one ELL(1) bipartite relation (the RGMS equivalence of
    Figure 22). *)

type t = {
  voxels : (int * int * int) array;
  index_of : (int * int * int, int) Hashtbl.t;
  grid : int;
}

val generate : ?seed:int -> grid:int -> target_points:int -> unit -> t
val n_points : t -> int
val conv_relations : ?kernel:int -> t -> Formats.Csr.t array

val minkowski_channels : (int * int) list
(** The (C_in, C_out) pairs benchmarked in Figure 23. *)
