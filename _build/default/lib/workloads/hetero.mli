(** Heterogeneous (multi-relation) graph generators standing in for the RGCN
    datasets of Table 2: Zipf-skewed relation sizes over power-law bipartite
    structure, like real knowledge graphs. *)

open Formats

type spec = {
  h_name : string;
  h_nodes : int;
  h_edges : int;
  h_etypes : int;
}

val table2 : spec list
val find_spec : string -> spec

type t = {
  spec : spec;
  relations : Csr.t array; (** one n x n adjacency per edge type *)
}

val generate : ?seed:int -> spec -> t
val total_edges : t -> int
val by_name : ?seed:int -> string -> t
