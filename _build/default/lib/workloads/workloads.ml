(* Synthetic workload generators: substitutes for the paper's datasets (see
   DESIGN.md S2). *)

module Rng = Rng
module Graphs = Graphs
module Hetero = Hetero
module Attention = Attention
module Pruning = Pruning
module Pointcloud = Pointcloud
