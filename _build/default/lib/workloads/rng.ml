(* Deterministic splitmix64 PRNG: all workloads are reproducible from their
   seed, independent of OCaml's global Random state. *)

type t = { mutable state : int64 }

let create (seed : int) : t = { state = Int64.of_int (seed * 2654435761 + 1) }

let next_int64 (g : t) : int64 =
  g.state <- Int64.add g.state 0x9e3779b97f4a7c15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform in [0, n) *)
let int (g : t) (n : int) : int =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.logand (next_int64 g) Int64.max_int) (Int64.of_int n))

(* uniform in [0, 1) *)
let float (g : t) : float =
  Int64.to_float (Int64.logand (next_int64 g) 0xfffffffffffffL) /. 4503599627370496.0

(* standard normal (Box-Muller) *)
let normal (g : t) : float =
  let u1 = Float.max 1e-12 (float g) and u2 = float g in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

(* Pareto-tailed value with exponent alpha, min value xmin. *)
let pareto (g : t) ~(alpha : float) ~(xmin : float) : float =
  xmin /. Float.pow (Float.max 1e-12 (1.0 -. float g)) (1.0 /. alpha)

let shuffle (g : t) (a : 'a array) : unit =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* sample [k] distinct ints from [0, n); k <= n *)
let distinct (g : t) ~(n : int) ~(k : int) : int array =
  if k * 3 >= n then begin
    let all = Array.init n Fun.id in
    shuffle g all;
    Array.sub all 0 (min k n)
  end
  else begin
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let x = int g n in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.replace seen x ();
        out.(!filled) <- x;
        incr filled
      end
    done;
    out
  end
