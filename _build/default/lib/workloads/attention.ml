(* Sparse attention mask generators (S4.3.1): the band matrix of Longformer
   and the butterfly (+ low-rank band) pattern of Pixelated Butterfly.  The
   paper evaluates 4096x4096 masks with 12 heads; the default scale here is
   reduced uniformly (see DESIGN.md S2), with the same block-sparse
   structure. *)

open Formats

(* Band matrix: |i - j| < band/2 (plus the diagonal), the Longformer local
   attention window. *)
let band ?(value = 1.0) ~(size : int) ~(band : int) () : Csr.t =
  let half = max 1 (band / 2) in
  let entries = ref [] in
  for i = size - 1 downto 0 do
    let lo = max 0 (i - half) and hi = min (size - 1) (i + half - 1) in
    for j = hi downto lo do
      entries := (i, j, value) :: !entries
    done
  done;
  Csr.of_coo
    { Coo.rows = size; cols = size; entries = Array.of_list !entries }

(* Butterfly sparsity at block granularity: block (bi, bj) is present when
   bi = bj or bi xor bj is a power of two — the classic butterfly factor
   support, as used by Pixelated Butterfly. *)
let butterfly ?(value = 1.0) ~(size : int) ~(block : int) () : Csr.t =
  let nb = size / block in
  let is_pow2 x = x > 0 && x land (x - 1) = 0 in
  let entries = ref [] in
  for bi = nb - 1 downto 0 do
    for bj = nb - 1 downto 0 do
      if bi = bj || is_pow2 (bi lxor bj) then
        for ii = block - 1 downto 0 do
          for jj = block - 1 downto 0 do
            entries := ((bi * block) + ii, (bj * block) + jj, value) :: !entries
          done
        done
    done
  done;
  Csr.of_coo
    { Coo.rows = size; cols = size; entries = Array.of_list !entries }

(* Random dense half-precision operand [heads; rows; cols] for batched
   attention kernels. *)
let batched_dense ?(seed = 3) ~(heads : int) ~(rows : int) ~(cols : int) () :
    Tir.Tensor.t =
  let g = Rng.create seed in
  let data =
    Array.init (heads * rows * cols) (fun _ -> (Rng.float g *. 2.0) -. 1.0)
  in
  Tir.Tensor.of_float_array ~dtype:Tir.Dtype.F16 [ heads; rows; cols ] data
