(* Graph generators standing in for the GNN datasets of Table 1.

   The real datasets cannot ship with this repository, so each named graph is
   generated with the same *degree-distribution shape* at a reduced scale
   (the property Figures 12-15 actually probe: power-law skew rewards the
   hyb format's load balancing, centralized degrees do not).  Scaling is
   uniform across all compared systems, preserving relative behaviour. *)

open Formats

type degree_shape =
  | Power_law of float    (* Pareto tail exponent *)
  | Centralized of float  (* normal around the mean, relative stddev *)

type spec = {
  g_name : string;
  g_nodes : int;
  g_edges : int;          (* target edge count *)
  g_shape : degree_shape;
}

(* Scaled stand-ins for the seven graphs of Table 1 (names kept for
   reporting).  cora/citeseer/pubmed are kept at full size; the larger OGB
   graphs are scaled down so the simulator can sweep every configuration. *)
let table1 : spec list =
  [ { g_name = "cora"; g_nodes = 2708; g_edges = 10556; g_shape = Power_law 2.2 };
    { g_name = "citeseer"; g_nodes = 3327; g_edges = 9228; g_shape = Power_law 2.4 };
    { g_name = "pubmed"; g_nodes = 9858; g_edges = 44325; g_shape = Power_law 2.1 };
    { g_name = "ppi"; g_nodes = 11226; g_edges = 317818; g_shape = Centralized 0.7 };
    { g_name = "ogbn-arxiv"; g_nodes = 16934; g_edges = 116624; g_shape = Power_law 1.8 };
    { g_name = "ogbn-proteins"; g_nodes = 8192; g_edges = 983040; g_shape = Centralized 0.25 };
    { g_name = "reddit"; g_nodes = 16384; g_edges = 1310720; g_shape = Power_law 1.5 } ]

let find_spec (name : string) : spec =
  match List.find_opt (fun s -> String.equal s.g_name name) table1 with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Graphs.find_spec: unknown graph %s" name)

(* Draw a degree sequence with the requested shape, rescaled to hit the
   target edge count. *)
let degree_sequence (g : Rng.t) (s : spec) : int array =
  let raw =
    Array.init s.g_nodes (fun _ ->
        match s.g_shape with
        | Power_law alpha -> Rng.pareto g ~alpha ~xmin:1.0
        | Centralized rel ->
            let mean = float_of_int s.g_edges /. float_of_int s.g_nodes in
            Float.max 1.0 (mean *. (1.0 +. (rel *. Rng.normal g))))
  in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let scale = float_of_int s.g_edges /. total in
  Array.map
    (fun d -> max 1 (min (s.g_nodes - 1) (int_of_float (Float.round (d *. scale)))))
    raw

(* Configuration-model adjacency matrix: row i holds deg(i) distinct
   neighbours.  Column targets are drawn with the same skew so hub columns
   exist too (as in citation graphs). *)
let generate ?(seed = 7) (s : spec) : Csr.t =
  let g = Rng.create (seed + Hashtbl.hash s.g_name) in
  let degs = degree_sequence g s in
  (* column popularity: reuse the degree sequence as sampling weights *)
  let n = s.g_nodes in
  let cum = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    cum.(i + 1) <- cum.(i) +. float_of_int degs.(i)
  done;
  let total = cum.(n) in
  let sample_col () =
    (* inverse-CDF sampling over the degree weights *)
    let x = Rng.float g *. total in
    let rec bs lo hi =
      if lo + 1 >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cum.(mid) <= x then bs mid hi else bs lo mid
    in
    bs 0 n
  in
  let indptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    indptr.(i + 1) <- indptr.(i) + degs.(i)
  done;
  let nnz = indptr.(n) in
  let indices = Array.make nnz 0 in
  let data = Array.make nnz 1.0 in
  let module IS = Set.Make (Int) in
  for i = 0 to n - 1 do
    let d = degs.(i) in
    let chosen = ref IS.empty in
    let tries = ref 0 in
    while IS.cardinal !chosen < d && !tries < 8 * d do
      incr tries;
      chosen := IS.add (sample_col ()) !chosen
    done;
    (* top up with distinct uniform columns if weighted sampling stalled *)
    while IS.cardinal !chosen < d do
      chosen := IS.add (Rng.int g n) !chosen
    done;
    List.iteri
      (fun k j -> indices.(indptr.(i) + k) <- j)
      (IS.elements !chosen)
  done;
  { Csr.rows = n; cols = n; indptr; indices; data }

(* Row-normalized adjacency (mean aggregation), used by GraphSAGE. *)
let normalize_rows (a : Csr.t) : Csr.t =
  let data = Array.copy a.Csr.data in
  for i = 0 to a.Csr.rows - 1 do
    let l = Csr.row_len a i in
    if l > 0 then
      for p = a.Csr.indptr.(i) to a.Csr.indptr.(i + 1) - 1 do
        data.(p) <- data.(p) /. float_of_int l
      done
  done;
  { a with Csr.data }

let by_name ?seed (name : string) : Csr.t = generate ?seed (find_spec name)
