(* Pruned-transformer weight generators (S4.3.2).

   Block pruning (Lagunas et al.): whole 32x32 blocks survive; surviving
   blocks cluster on a subset of block rows so many block rows are entirely
   empty — the property DBSR exploits (Figure 17).

   Movement pruning (Sanh et al.): unstructured, but weight magnitudes
   correlate within columns, so t x 1 column vectors capture most non-zeros —
   the property SR-BCRS exploits (Figures 18-19). *)

open Formats

(* BERT-base SpMM operator shapes (weight rows x cols); the dense operand has
   [cols x seq_len] shape. *)
let bert_shapes = [ (768, 768); (3072, 768); (768, 3072) ]

(* Block-pruned weight matrix: keep approximately [density] of the blocks,
   with [zero_row_frac] of the block rows forced empty (clustered pruning). *)
let block_pruned ?(seed = 5) ~(rows : int) ~(cols : int) ~(block : int)
    ~(density : float) ?(zero_row_frac = 0.4) () : Csr.t =
  let g = Rng.create seed in
  let rows_b = rows / block and cols_b = cols / block in
  let live_rows =
    Array.init rows_b (fun _ -> Rng.float g >= zero_row_frac)
  in
  (* concentrate the global block density on live rows *)
  let live_count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 live_rows in
  let live_density =
    if live_count = 0 then 0.0
    else
      Float.min 1.0 (density *. float_of_int rows_b /. float_of_int live_count)
  in
  let entries = ref [] in
  for bi = rows_b - 1 downto 0 do
    if live_rows.(bi) then
      for bj = cols_b - 1 downto 0 do
        if Rng.float g < live_density then
          (* fill the whole block with non-zero values *)
          for ii = block - 1 downto 0 do
            for jj = block - 1 downto 0 do
              entries :=
                ((bi * block) + ii, (bj * block) + jj, (Rng.float g *. 2.0) -. 1.0)
                :: !entries
            done
          done
      done
  done;
  Csr.of_coo { Coo.rows; cols; entries = Array.of_list !entries }

(* Movement-pruned weight matrix: element-level sparsity with column-vector
   correlation: a fraction of t x 1 column segments carries most surviving
   weights. *)
let movement_pruned ?(seed = 9) ~(rows : int) ~(cols : int)
    ~(density : float) ?(tile = 8) ?(tile_fill = 0.7) () : Csr.t =
  let g = Rng.create seed in
  let strips = (rows + tile - 1) / tile in
  (* probability that a t x 1 tile is active, given that active tiles carry
     [tile_fill] of their elements *)
  let tile_density = Float.min 1.0 (density /. tile_fill) in
  let entries = ref [] in
  for s = 0 to strips - 1 do
    for j = 0 to cols - 1 do
      if Rng.float g < tile_density then
        for r = 0 to tile - 1 do
          let i = (s * tile) + r in
          if i < rows && Rng.float g < tile_fill then
            entries := (i, j, (Rng.float g *. 2.0) -. 1.0) :: !entries
        done
    done
  done;
  Csr.of_coo { Coo.rows; cols; entries = Array.of_list !entries }

(* Dense input activations [in_features x seq_len]. *)
let activations ?(seed = 21) ~(in_features : int) ~(seq_len : int) () : Dense.t
    =
  Dense.random ~seed in_features seq_len
