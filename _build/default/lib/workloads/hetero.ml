(* Heterogeneous (multi-relation) graph generators standing in for the RGCN
   datasets of Table 2.  Relation sizes follow the heavy skew of real
   knowledge graphs: a few relations hold most edges (Zipf over relations),
   and each relation's bipartite structure has power-law degrees. *)

open Formats

type spec = {
  h_name : string;
  h_nodes : int;
  h_edges : int;
  h_etypes : int;
}

(* Scaled stand-ins for the five heterographs of Table 2. *)
let table2 : spec list =
  [ { h_name = "AIFB"; h_nodes = 7262; h_edges = 48810; h_etypes = 45 };
    { h_name = "MUTAG"; h_nodes = 13581; h_edges = 74050; h_etypes = 46 };
    { h_name = "BGS"; h_nodes = 9480; h_edges = 67288; h_etypes = 96 };
    { h_name = "ogbl-biokg"; h_nodes = 9377; h_edges = 476267; h_etypes = 51 };
    { h_name = "AM"; h_nodes = 18851; h_edges = 56686; h_etypes = 96 } ]

let find_spec (name : string) : spec =
  match List.find_opt (fun s -> String.equal s.h_name name) table2 with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Hetero.find_spec: unknown graph %s" name)

type t = {
  spec : spec;
  relations : Csr.t array; (* one n x n adjacency per edge type *)
}

let generate ?(seed = 13) (s : spec) : t =
  let g = Rng.create (seed + Hashtbl.hash s.h_name) in
  (* Zipf split of edges over relations *)
  let weights =
    Array.init s.h_etypes (fun r -> 1.0 /. float_of_int (r + 1))
  in
  let wsum = Array.fold_left ( +. ) 0.0 weights in
  let rel_edges =
    Array.map
      (fun w ->
        max 1 (int_of_float (Float.round (w /. wsum *. float_of_int s.h_edges))))
      weights
  in
  let relations =
    Array.map
      (fun ne ->
        let entries = ref [] in
        let seen = Hashtbl.create (2 * ne) in
        let made = ref 0 in
        while !made < ne do
          (* mild source-skew: squared uniform biases toward low ids *)
          let u = Rng.float g in
          let i = int_of_float (u *. u *. float_of_int s.h_nodes) mod s.h_nodes in
          let j = Rng.int g s.h_nodes in
          if not (Hashtbl.mem seen (i, j)) then begin
            Hashtbl.replace seen (i, j) ();
            entries := (i, j, 1.0) :: !entries;
            incr made
          end
        done;
        Csr.of_coo
          { Coo.rows = s.h_nodes; cols = s.h_nodes;
            entries = Array.of_list !entries })
      rel_edges
  in
  { spec = s; relations }

let total_edges (h : t) : int =
  Array.fold_left (fun a r -> a + Csr.nnz r) 0 h.relations

let by_name ?seed (name : string) : t = generate ?seed (find_spec name)
