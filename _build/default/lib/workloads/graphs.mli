(** Graph generators standing in for the GNN datasets of Table 1: each named
    graph matches the real dataset's degree-distribution shape at a reduced
    scale (power-law skew rewards hyb's load balancing; centralized degrees
    do not).  Scaling is uniform across compared systems. *)

open Formats

type degree_shape =
  | Power_law of float   (** Pareto tail exponent *)
  | Centralized of float (** normal around the mean, relative stddev *)

type spec = {
  g_name : string;
  g_nodes : int;
  g_edges : int;
  g_shape : degree_shape;
}

val table1 : spec list
(** Scaled stand-ins for the seven graphs of Table 1. *)

val find_spec : string -> spec
val degree_sequence : Rng.t -> spec -> int array

val generate : ?seed:int -> spec -> Csr.t
(** Configuration-model adjacency with skewed column popularity. *)

val normalize_rows : Csr.t -> Csr.t
(** Mean-aggregation normalization, used by GraphSAGE. *)

val by_name : ?seed:int -> string -> Csr.t
