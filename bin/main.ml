(* sparsetir-cli: inspect the compilation pipeline and run individual
   experiments from the command line.

   Subcommands:
     show   --op spmm|sddmm --graph NAME --feat N [--stage 1|2|3]
     run    --op ... --system ... : time one kernel on a simulated GPU
     bench  NAME [--full]        : one experiment from the harness *)

open Cmdliner
open Formats

let graph_arg =
  let doc = "Graph workload (cora, citeseer, pubmed, ppi, ogbn-arxiv, \
             ogbn-proteins, reddit)." in
  Arg.(value & opt string "cora" & info [ "graph" ] ~docv:"NAME" ~doc)

let feat_arg =
  let doc = "Dense feature size." in
  Arg.(value & opt int 32 & info [ "feat" ] ~docv:"N" ~doc)

let stage_arg =
  let doc = "Pipeline stage to print (1 = coordinate space, 2 = position \
             space, 3 = flat loop IR)." in
  Arg.(value & opt int 3 & info [ "stage" ] ~docv:"STAGE" ~doc)

let op_arg =
  let doc = "Operator: spmm or sddmm." in
  Arg.(value & opt string "spmm" & info [ "op" ] ~docv:"OP" ~doc)

let gpu_arg =
  let doc = "Simulated GPU: v100 or rtx3070." in
  Arg.(value & opt string "v100" & info [ "gpu" ] ~docv:"GPU" ~doc)

let spec_of = function
  | "rtx3070" -> Gpusim.Spec.rtx3070
  | _ -> Gpusim.Spec.v100

let engine_arg =
  let doc = "Execution engine for correctness runs: $(b,compiled) (closure \
             codegen, the default) or $(b,interp) (tree-walking \
             interpreter)." in
  Arg.(value
      & opt (enum [ ("compiled", Engine.Compiled); ("interp", Engine.Interp) ])
          Engine.Compiled
      & info [ "engine" ] ~docv:"ENGINE" ~doc)

let show graph feat op stage =
  let a = Workloads.Graphs.by_name graph in
  let fn =
    match op with
    | "sddmm" -> Kernels.Sddmm.stage1 a ~feat
    | _ -> Kernels.Spmm.stage1 a ~feat
  in
  let fn =
    match stage with
    | 1 -> fn
    | 2 -> Sparse_ir.lower_iterations fn
    | _ -> Sparse_ir.compile fn
  in
  print_endline (Tir.Printer.func_to_string fn)

let domains_arg =
  let doc = "Domain budget for thread-bound outer loops in the compiled \
             engine (1 = serial; 0 = auto, the machine's recommended \
             count)." in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let fusion_arg =
  let doc = "Closure-fusion peephole in the compiled engine (fused \
             accumulation stores, loop-invariant hoisting, strength-reduced \
             linear offsets).  $(b,--fusion=false) compiles unfused \
             closures." in
  Arg.(value & opt bool true & info [ "fusion" ] ~docv:"BOOL" ~doc)

let run graph feat op gpu system engine domains fusion =
  Engine.default_kind := engine;
  (* 0 = auto: Engine.set_num_domains owns the single clamp *)
  Engine.set_num_domains domains;
  Engine.set_fusion fusion;
  let a = Workloads.Graphs.by_name graph in
  let spec = spec_of gpu in
  let x = Dense.random ~seed:11 a.Csr.cols feat in
  let profile, fn, bindings =
    match (op, system) with
    | "sddmm", _ ->
        let xs = Dense.random ~seed:5 a.Csr.rows feat in
        let ys = Dense.random ~seed:6 feat a.Csr.cols in
        let c =
          match system with
          | "dgl" -> Kernels.Sddmm.dgl a xs ys ~feat
          | "dgsparse" -> Kernels.Sddmm.dgsparse a xs ys ~feat
          | "taco" -> Kernels.Sddmm.taco a xs ys ~feat
          | _ -> Kernels.Sddmm.sparsetir a xs ys ~feat
        in
        ( Gpusim.run spec c.Kernels.Sddmm.fn c.Kernels.Sddmm.bindings,
          c.Kernels.Sddmm.fn, c.Kernels.Sddmm.bindings )
    | _, "hyb" ->
        let c, h = Kernels.Spmm.sparsetir_hyb a x ~feat in
        Printf.printf "hyb: %d buckets, %.1f%% padding\n"
          (List.length h.Hyb.buckets) (Hyb.padding_pct h);
        ( Gpusim.run ~horizontal_fusion:true spec c.Kernels.Spmm.fn
            c.Kernels.Spmm.bindings,
          c.Kernels.Spmm.fn, c.Kernels.Spmm.bindings )
    | _, sys ->
        let c =
          match sys with
          | "cusparse" -> Kernels.Spmm.cusparse a x ~feat
          | "dgsparse" -> Kernels.Spmm.dgsparse a x ~feat
          | "sputnik" -> Kernels.Spmm.sputnik a x ~feat
          | "taco" -> Kernels.Spmm.taco a x ~feat
          | _ -> Kernels.Spmm.sparsetir_no_hyb a x ~feat
        in
        ( Gpusim.run spec c.Kernels.Spmm.fn c.Kernels.Spmm.bindings,
          c.Kernels.Spmm.fn, c.Kernels.Spmm.bindings )
  in
  Printf.printf "%s %s on %s (%s, d=%d): %s\n" system op graph gpu feat
    (Gpusim.pp_profile profile);
  (* functional execution through the selected engine, timed for reference
     (the simulated profile above is the paper-facing number) *)
  Gpusim.execute ~engine fn bindings;
  let t0 = Unix.gettimeofday () in
  Gpusim.execute ~engine fn bindings;
  Printf.printf "functional run (%s engine): %.3f ms\n"
    (Engine.kind_to_string engine)
    ((Unix.gettimeofday () -. t0) *. 1000.0);
  if engine = Engine.Compiled then begin
    let art = Engine.artifact fn in
    Printf.printf "parallel: domains=%d, parallel runs=%d (%d tiled), serial \
                   fallbacks=%d (%s)\n"
      (Engine.num_domains ()) (Engine.par_runs art) (Engine.tiled_runs art)
      (Engine.fallback_runs art)
      (Engine.reasons_to_string (Engine.fallback_reasons art));
    Printf.printf "fusion: %s, fused stores=%d, hoisted=%d, \
                   strength-reduced=%d\n"
      (if Engine.fusion () then "on" else "off")
      (Engine.fused_sites art) (Engine.hoisted_sites art)
      (Engine.linear_sites art)
  end

(* serve: push the synthetic multi-tenant traffic mix through the serving
   loop and print its metrics plus the pipeline report (whose serve hook
   shows the process-wide totals). *)
let serve requests max_batch deadline_ms width inflight domains =
  Engine.set_num_domains domains;
  let cfg =
    {
      Serve.max_batch;
      deadline_ms;
      lease_width = width;
      max_inflight = inflight;
    }
  in
  let fams = Serve.Traffic.mix ~seed:13 ~requests () in
  let s = Serve.create ~config:cfg () in
  List.iter
    (fun (f : Serve.Traffic.family) ->
      let inst = f.Serve.Traffic.f_build () in
      ignore
        (Serve.submit s ~tenant:inst.Serve.Traffic.ti_tenant
           inst.Serve.Traffic.ti_steps);
      Serve.pump s)
    fams;
  Serve.drain s;
  Printf.printf "tenants: %s\n"
    (String.concat ", " (Serve.Traffic.family_names ()));
  print_endline (Serve.stats_to_string (Serve.stats s));
  print_string (Pipeline.report ())

(* tune: search a kernel family's candidate grid — exhaustively or guided
   by the analytical estimator — and print the ranked trials, the winner
   and the structure-keyed cache interaction. *)
let tune graph feat family gpu guided topk rho =
  let a = Workloads.Graphs.by_name graph in
  let spec = spec_of gpu in
  let x = Dense.random ~seed:11 a.Csr.cols feat in
  let st = Formats.Stats.of_csr a in
  Printf.printf "structure: %s\n  key: %s\n" (Formats.Stats.to_string st)
    (Formats.Stats.key st);
  let search cands =
    if guided then Tuner.search_guided ?topk ?rho cands else Tuner.search cands
  in
  let print_result (type a) (to_ints : a -> int list) (r : a Tuner.result) =
    List.iter
      (fun (label, t) ->
        if t = infinity then Printf.printf "  %-24s FAILED\n" label
        else Printf.printf "  %-24s %.4f ms\n" label t)
      (List.sort (fun (_, t1) (_, t2) -> compare t1 t2) r.Tuner.trials);
    Printf.printf
      "winner: %s (%.4f ms) — measured %d, skipped %d, failed %d, compile \
       cache %d hits / %d misses\n"
      r.Tuner.best_label r.Tuner.best.Gpusim.p_time_ms r.Tuner.measured
      r.Tuner.skipped r.Tuner.failed r.Tuner.cache_hits r.Tuner.cache_misses;
    Tuner.Cache.store ~family ~feat (Formats.Stats.key st)
      ~label:r.Tuner.best_label
      ~config:(to_ints r.Tuner.best_config);
    Printf.printf "schedule cache: stored under family %s (size %d)\n" family
      (Tuner.Cache.size ())
  in
  (match family with
  | "no-hyb" | "no_hyb" ->
      print_result
        (fun (g, v) -> [ g; v ])
        (search (Tuner.spmm_no_hyb_candidates spec a x ~feat))
  | "sell" ->
      print_result
        (fun (s, g) -> [ s; g ])
        (search (Tuner.spmm_sell_candidates spec a x ~feat))
  | "sddmm" ->
      let xs = Dense.random ~seed:5 a.Csr.rows feat in
      let ys = Dense.random ~seed:6 feat a.Csr.cols in
      print_result
        (fun (e, g, v) -> [ e; g; v ])
        (search (Tuner.sddmm_candidates spec a xs ys ~feat))
  | _ ->
      print_result
        (fun c -> [ c ])
        (search (Tuner.spmm_hyb_candidates spec a x ~feat)));
  print_string (Pipeline.report ())

let requests_arg =
  let doc = "Number of requests to push through the serving loop." in
  Arg.(value & opt int 32 & info [ "requests" ] ~docv:"N" ~doc)

let max_batch_arg =
  let doc = "Horizontal-fusion batch size: a tenant group flushes at this \
             many waiting requests." in
  Arg.(value & opt int 4 & info [ "max-batch" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Batching deadline in milliseconds: a group flushes when its \
             oldest waiter is this old even if not full." in
  Arg.(value & opt float 1.0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let width_arg =
  let doc = "Domain-lease width per launched batch (clamped to the domain \
             budget)." in
  Arg.(value & opt int 2 & info [ "width" ] ~docv:"N" ~doc)

let inflight_arg =
  let doc = "Maximum concurrently executing batches." in
  Arg.(value & opt int 2 & info [ "inflight" ] ~docv:"N" ~doc)

let system_arg =
  let doc = "Kernel strategy: cusparse, dgsparse, sputnik, taco, no-hyb, \
             hyb (SpMM) / dgl, dgsparse, taco, sparsetir (SDDMM)." in
  Arg.(value & opt string "hyb" & info [ "system" ] ~docv:"SYS" ~doc)

let family_arg =
  let doc = "Kernel family to tune: hyb, no-hyb, sell or sddmm." in
  Arg.(value & opt string "hyb" & info [ "family" ] ~docv:"FAM" ~doc)

let guided_arg =
  let doc = "Rank candidates with the analytical cost estimator and measure \
             only the top fraction (see $(b,--rho) / $(b,--topk)); off means \
             exhaustive measurement." in
  Arg.(value & flag & info [ "guided" ] ~doc)

let topk_arg =
  let doc = "Measure exactly K estimator-ranked candidates (overrides \
             $(b,--rho))." in
  Arg.(value & opt (some int) None & info [ "topk" ] ~docv:"K" ~doc)

let rho_arg =
  let doc = "Fraction of the candidate grid to measure under guided search." in
  Arg.(value & opt (some float) None & info [ "rho" ] ~docv:"RHO" ~doc)

let show_cmd =
  Cmd.v (Cmd.info "show" ~doc:"Print the IR of an operator at a pipeline stage")
    Term.(const show $ graph_arg $ feat_arg $ op_arg $ stage_arg)

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Profile one kernel on a simulated GPU")
    Term.(
      const run $ graph_arg $ feat_arg $ op_arg $ gpu_arg $ system_arg
      $ engine_arg $ domains_arg $ fusion_arg)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant serving loop over synthetic GNN traffic \
          (batched horizontal fusion, domain leases, tenant artifact cache)")
    Term.(
      const serve $ requests_arg $ max_batch_arg $ deadline_arg $ width_arg
      $ inflight_arg $ domains_arg)

let tune_cmd =
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Search a kernel family's schedule grid on a simulated GPU, \
          exhaustively or guided by the analytical cost estimator, and print \
          the ranked trials plus the structure-keyed schedule-cache entry")
    Term.(
      const tune $ graph_arg $ feat_arg $ family_arg $ gpu_arg $ guided_arg
      $ topk_arg $ rho_arg)

let main_cmd =
  let doc = "SparseTIR (OCaml reproduction) command-line tools" in
  Cmd.group
    (Cmd.info "sparsetir-cli" ~doc)
    [ show_cmd; run_cmd; serve_cmd; tune_cmd ]

let () = exit (Cmd.eval main_cmd)
